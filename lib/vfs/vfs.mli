(** Virtual filesystem.

    Every byte the storage engine reads or writes goes through this
    interface, which exists for three reasons:

    - the disk-model benchmarks wrap a filesystem with {!with_model} so the
      cost model sees the engine's exact I/O pattern;
    - tests run against {!memory}, which supports {!crash}: all data not
      made durable by [fsync] (or an atomic [rename]) disappears, letting
      property tests validate the paper's prefix-durability guarantee;
    - {!faulty} injects I/O errors to exercise recovery paths.

    Offsets and sizes are [int]: a 63-bit int comfortably addresses any
    tablet. All operations raise {!Io_error} on failure. *)

exception Io_error of string

type t

(** An open file handle. Handles are safe to share across threads. *)
type file

(** {1 Implementations} *)

(** Direct [Unix] filesystem access. *)
val real : unit -> t

(** An in-memory filesystem with durability tracking. *)
val memory : unit -> t

(** [with_model model inner] forwards everything to [inner] and notifies
    [model] of each operation. *)
val with_model : Disk_model.t -> t -> t

(** [faulty ~should_fail inner] raises [Io_error] whenever
    [should_fail ~op ~path] is true; [op] is the operation name
    (["append"], ["fsync"], ["rename"], ["sync_dir"], ...). *)
val faulty : should_fail:(op:string -> path:string -> bool) -> t -> t

(** {1 Operations} *)

val open_read : t -> string -> file
val create : t -> string -> file

(** [pread t f ~off ~len] reads exactly [len] bytes at [off].
    @raise Io_error if the range lies outside the file. *)
val pread : t -> file -> off:int -> len:int -> string

val append : t -> file -> string -> unit
val file_size : t -> file -> int
val fsync : t -> file -> unit
val close : t -> file -> unit

(** Atomic replace. The swap itself only survives a crash once the
    parent directory has been {!sync_dir}'d; until then the destination
    may revert to its pre-rename content. *)
val rename : t -> src:string -> dst:string -> unit

val delete : t -> string -> unit
val exists : t -> string -> bool

(** Names (not paths) of directory entries, sorted. *)
val readdir : t -> string -> string list

val mkdir_p : t -> string -> unit

(** [sync_dir t dir] makes [dir]'s entries durable — the fsync-the-parent
    step POSIX requires after [create]/[rename]/[delete] before the
    presence (or absence) of a name is guaranteed to survive a crash.
    Real filesystem: opens the directory and fsyncs the fd. Memory
    filesystem: commits pending entry changes so {!crash} keeps them. *)
val sync_dir : t -> string -> unit

(** Read a whole file. *)
val read_all : t -> string -> string

(** {1 Crash simulation} (memory filesystem only) *)

(** Simulate a machine crash: every file reverts to its last durable
    content, and directory entries not committed by {!sync_dir} are
    rolled back (unsynced files vanish; deletes and renames whose parent
    was never synced are undone).
    @raise Invalid_argument on other implementations. *)
val crash : t -> unit

(** {1 Durability-point counting and fault sweeps}

    The torture harness ({!module:Lt_torture.Torture}) runs a workload
    once under a {!counting} wrapper to enumerate its durability points,
    then replays it once per point with [Crash_at k] or [Io_error_at k]
    armed. *)

(** Raised (once) by a [Crash_at k] wrapper at durability point [k].
    Deliberately distinct from {!Io_error} so engine recovery code cannot
    swallow a simulated machine death. *)
exception Crash_point of int

type inject =
  | No_fault
  | Crash_at of int
      (** Raise {!Crash_point} at point [k], then silently suppress every
          subsequent mutation — nothing runs on a dead machine, including
          [Fun.protect] cleanup handlers. *)
  | Io_error_at of int
      (** Raise {!Io_error} at point [k] only; later operations succeed,
          modeling a transient fault. *)

(** Mutable record of the durability-relevant operations observed. *)
type counter

(** [counting ?inject inner] wraps [inner], numbering each
    durability-relevant operation (create / append / fsync / rename /
    delete / sync_dir) from 0 in execution order. Reads are not counted.
    Thread-safe. *)
val counting : ?inject:inject -> t -> counter * t

(** Durability operations observed so far. *)
val op_count : counter -> int

(** [(op, path)] pairs in execution order. *)
val op_log : counter -> (string * string) list

(** True once a [Crash_at] point has fired. *)
val halted : counter -> bool
