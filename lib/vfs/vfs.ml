exception Io_error of string

let io_error fmt = Format.kasprintf (fun s -> raise (Io_error s)) fmt

type file = {
  f_path : string;
  f_pread : off:int -> len:int -> string;
  f_append : string -> unit;
  f_size : unit -> int;
  f_fsync : unit -> unit;
  f_close : unit -> unit;
}

type t = {
  v_open_read : string -> file;
  v_create : string -> file;
  v_rename : src:string -> dst:string -> unit;
  v_delete : string -> unit;
  v_exists : string -> bool;
  v_readdir : string -> string list;
  v_mkdir_p : string -> unit;
  v_sync_dir : string -> unit;
  v_crash : unit -> unit;
}

let open_read t path = t.v_open_read path

let create t path = t.v_create path

let pread _t f ~off ~len = f.f_pread ~off ~len

let append _t f data = f.f_append data

let file_size _t f = f.f_size ()

let fsync _t f = f.f_fsync ()

let close _t f = f.f_close ()

let rename t ~src ~dst = t.v_rename ~src ~dst

let delete t path = t.v_delete path

let exists t path = t.v_exists path

let readdir t path = t.v_readdir path

let mkdir_p t path = t.v_mkdir_p path

let sync_dir t path = t.v_sync_dir path

let crash t = t.v_crash ()

let read_all t path =
  let f = open_read t path in
  Fun.protect
    ~finally:(fun () -> close t f)
    (fun () -> pread t f ~off:0 ~len:(file_size t f))

(* ------------------------------------------------------------------ *)
(* Real filesystem                                                     *)
(* ------------------------------------------------------------------ *)

let wrap_unix op path f =
  try f () with
  | Unix.Unix_error (e, _, _) ->
      io_error "%s %s: %s" op path (Unix.error_message e)
  | Sys_error msg -> io_error "%s %s: %s" op path msg

let real () =
  let make_file path fd =
    (* pread via lseek + read must not interleave across threads. *)
    let mutex = Mutex.create () in
    let locked f = Lt_util.Mutexes.with_lock mutex f in
    {
      f_path = path;
      f_pread =
        (fun ~off ~len ->
          wrap_unix "pread" path (fun () ->
              locked (fun () ->
                  ignore (Unix.lseek fd off Unix.SEEK_SET);
                  let buf = Bytes.create len in
                  let got = ref 0 in
                  while !got < len do
                    let n = Unix.read fd buf !got (len - !got) in
                    if n = 0 then io_error "pread %s: short read" path;
                    got := !got + n
                  done;
                  Bytes.unsafe_to_string buf)));
      f_append =
        (fun data ->
          wrap_unix "append" path (fun () ->
              locked (fun () ->
                  ignore (Unix.lseek fd 0 Unix.SEEK_END);
                  let b = Bytes.unsafe_of_string data in
                  let off = ref 0 in
                  let len = Bytes.length b in
                  while !off < len do
                    let n = Unix.write fd b !off (len - !off) in
                    off := !off + n
                  done)));
      f_size =
        (fun () -> wrap_unix "size" path (fun () -> (Unix.fstat fd).st_size));
      f_fsync = (fun () -> wrap_unix "fsync" path (fun () -> Unix.fsync fd));
      f_close = (fun () -> wrap_unix "close" path (fun () -> Unix.close fd));
    }
  in
  let rec mkdir_p path =
    if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
      mkdir_p (Filename.dirname path);
      try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  {
    v_open_read =
      (fun path ->
        wrap_unix "open" path (fun () ->
            make_file path (Unix.openfile path [ Unix.O_RDONLY ] 0)));
    v_create =
      (fun path ->
        wrap_unix "create" path (fun () ->
            make_file path
              (Unix.openfile path
                 [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ]
                 0o644)));
    v_rename =
      (fun ~src ~dst ->
        wrap_unix "rename" src (fun () -> Unix.rename src dst));
    v_delete = (fun path -> wrap_unix "delete" path (fun () -> Unix.unlink path));
    v_exists = (fun path -> Sys.file_exists path);
    v_readdir =
      (fun path ->
        wrap_unix "readdir" path (fun () ->
            let entries = Sys.readdir path in
            Array.sort compare entries;
            Array.to_list entries));
    v_mkdir_p = (fun path -> wrap_unix "mkdir" path (fun () -> mkdir_p path));
    v_sync_dir =
      (fun path ->
        let path = if path = "" then "." else path in
        wrap_unix "sync_dir" path (fun () ->
            let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> Unix.fsync fd)));
    v_crash = (fun () -> invalid_arg "Vfs.crash: real filesystem");
  }

(* ------------------------------------------------------------------ *)
(* In-memory filesystem                                                *)
(* ------------------------------------------------------------------ *)

type mem_file = {
  mutable data : Bytes.t;
  mutable len : int;
  mutable durable_len : int;  (** content bytes that survive a crash; -1 = none *)
  mutable entry_durable : bool;
      (** the directory entry survives a crash (parent dir synced) *)
}

let memory () =
  let files : (string, mem_file) Hashtbl.t = Hashtbl.create 64 in
  let dirs : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Durable content that reappears under [path] after a crash because the
     operation that removed or replaced the entry (delete, rename, create-
     over) was never made durable by a parent-directory sync. *)
  let ghosts : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let mutex = Mutex.create () in
  let locked f = Lt_util.Mutexes.with_lock mutex f in
  let find op path =
    match Hashtbl.find_opt files path with
    | Some f -> f
    | None -> io_error "%s %s: no such file" op path
  in
  (* Remember the crash-surviving image of [path] before its entry is
     removed or replaced; a later sync of the parent directory (or an
     fsync of a replacement file under the same name) forgets it. *)
  let ghost_of path mf =
    if mf.entry_durable && mf.durable_len >= 0 then
      Hashtbl.replace ghosts path (Bytes.sub_string mf.data 0 mf.durable_len)
  in
  let make_file path mf =
    {
      f_path = path;
      f_pread =
        (fun ~off ~len ->
          locked (fun () ->
              if off < 0 || len < 0 || off + len > mf.len then
                io_error "pread %s: range [%d,+%d) outside file of %d bytes"
                  path off len mf.len;
              Bytes.sub_string mf.data off len));
      f_append =
        (fun s ->
          locked (fun () ->
              let n = String.length s in
              if mf.len + n > Bytes.length mf.data then begin
                let ncap = max (mf.len + n) (max 256 (2 * Bytes.length mf.data)) in
                let ndata = Bytes.create ncap in
                Bytes.blit mf.data 0 ndata 0 mf.len;
                mf.data <- ndata
              end;
              Bytes.blit_string s 0 mf.data mf.len n;
              mf.len <- mf.len + n));
      f_size = (fun () -> locked (fun () -> mf.len));
      f_fsync =
        (fun () ->
          locked (fun () ->
              mf.durable_len <- mf.len;
              (* Content at this name is durable now; any older image the
                 name could revert to is superseded. *)
              Hashtbl.remove ghosts path));
      f_close = (fun () -> ());
    }
  in
  {
    v_open_read =
      (fun path -> locked (fun () -> make_file path (find "open" path)));
    v_create =
      (fun path ->
        locked (fun () ->
            (* Creating over an existing file truncates through the existing
               directory entry: entry durability is inherited, and if the old
               content was durable it reappears after a crash unless the new
               content is fsynced first. *)
            let entry_durable =
              match Hashtbl.find_opt files path with
              | Some old ->
                  ghost_of path old;
                  old.entry_durable
              | None -> false
            in
            let mf =
              { data = Bytes.create 256; len = 0; durable_len = -1; entry_durable }
            in
            Hashtbl.replace files path mf;
            make_file path mf));
    v_rename =
      (fun ~src ~dst ->
        locked (fun () ->
            let mf = find "rename" src in
            Hashtbl.remove files src;
            (* The rename itself commits only with a parent-directory sync:
               until then a crash reverts it, restoring both the source
               entry and the destination's previous durable content. *)
            ghost_of src mf;
            (match Hashtbl.find_opt files dst with
            | Some old -> ghost_of dst old
            | None -> ());
            (* Journaled filesystems order file data ahead of the rename
               record (and the engine fsyncs before renaming anyway), so the
               content carried across is durable at rename-time length. *)
            mf.durable_len <- mf.len;
            mf.entry_durable <- false;
            Hashtbl.replace files dst mf));
    v_delete =
      (fun path ->
        locked (fun () ->
            let mf = find "delete" path in
            ghost_of path mf;
            Hashtbl.remove files path));
    v_exists = (fun path -> locked (fun () -> Hashtbl.mem files path));
    v_readdir =
      (fun path ->
        locked (fun () ->
            let prefix = if path = "" then "" else path ^ "/" in
            let plen = String.length prefix in
            let names =
              Hashtbl.fold
                (fun name _ acc ->
                  if String.length name > plen && String.sub name 0 plen = prefix
                  then begin
                    (* Direct children: files as-is, deeper paths by their
                       first segment (the subdirectory name). *)
                    let rest = String.sub name plen (String.length name - plen) in
                    match String.index_opt rest '/' with
                    | None -> rest :: acc
                    | Some i -> String.sub rest 0 i :: acc
                  end
                  else acc)
                files []
            in
            List.sort_uniq compare names));
    v_mkdir_p = (fun path -> locked (fun () -> Hashtbl.replace dirs path ()));
    v_sync_dir =
      (fun path ->
        locked (fun () ->
            let dir = if path = "" then "." else path in
            let in_dir p = Filename.dirname p = dir in
            Hashtbl.iter
              (fun p mf -> if in_dir p then mf.entry_durable <- true)
              files;
            let committed =
              Hashtbl.fold
                (fun p _ acc -> if in_dir p then p :: acc else acc)
                ghosts []
            in
            List.iter (Hashtbl.remove ghosts) committed));
    v_crash =
      (fun () ->
        locked (fun () ->
            let doomed = ref [] in
            Hashtbl.iter
              (fun path mf ->
                if (not mf.entry_durable) || mf.durable_len < 0 then
                  doomed := path :: !doomed
                else mf.len <- mf.durable_len)
              files;
            List.iter (Hashtbl.remove files) !doomed;
            Hashtbl.iter
              (fun path content ->
                if not (Hashtbl.mem files path) then begin
                  let len = String.length content in
                  {
                    data = Bytes.of_string content;
                    len;
                    durable_len = len;
                    entry_durable = true;
                  }
                  |> Hashtbl.replace files path
                end)
              ghosts;
            Hashtbl.reset ghosts));
  }

(* ------------------------------------------------------------------ *)
(* Disk-model tracing wrapper                                          *)
(* ------------------------------------------------------------------ *)

let with_model model inner =
  let wrap_file f =
    {
      f with
      f_pread =
        (fun ~off ~len ->
          let data = f.f_pread ~off ~len in
          Disk_model.note_read model f.f_path ~off ~len;
          data);
      f_append =
        (fun s ->
          let off = f.f_size () in
          f.f_append s;
          Disk_model.note_write model f.f_path ~off ~len:(String.length s));
      f_fsync =
        (fun () ->
          f.f_fsync ();
          Disk_model.note_fsync model f.f_path);
    }
  in
  {
    inner with
    v_open_read =
      (fun path ->
        let f = inner.v_open_read path in
        Disk_model.note_open model path;
        wrap_file f);
    v_create =
      (fun path ->
        let f = inner.v_create path in
        Disk_model.note_create model path;
        wrap_file f);
    v_rename =
      (fun ~src ~dst ->
        inner.v_rename ~src ~dst;
        Disk_model.note_rename model src dst);
    v_delete =
      (fun path ->
        inner.v_delete path;
        Disk_model.note_delete model path);
  }

(* ------------------------------------------------------------------ *)
(* Fault injection wrapper                                             *)
(* ------------------------------------------------------------------ *)

let faulty ~should_fail inner =
  let check op path =
    if should_fail ~op ~path then io_error "%s %s: injected fault" op path
  in
  let wrap_file f =
    {
      f with
      f_pread =
        (fun ~off ~len ->
          check "pread" f.f_path;
          f.f_pread ~off ~len);
      f_append =
        (fun s ->
          check "append" f.f_path;
          f.f_append s);
      f_fsync =
        (fun () ->
          check "fsync" f.f_path;
          f.f_fsync ());
    }
  in
  {
    inner with
    v_open_read =
      (fun path ->
        check "open" path;
        wrap_file (inner.v_open_read path));
    v_create =
      (fun path ->
        check "create" path;
        wrap_file (inner.v_create path));
    v_rename =
      (fun ~src ~dst ->
        check "rename" src;
        inner.v_rename ~src ~dst);
    v_delete =
      (fun path ->
        check "delete" path;
        inner.v_delete path);
    v_sync_dir =
      (fun path ->
        check "sync_dir" path;
        inner.v_sync_dir path);
  }

(* ------------------------------------------------------------------ *)
(* Durability-point counting and crash/fault sweeps                    *)
(* ------------------------------------------------------------------ *)

exception Crash_point of int

type inject = No_fault | Crash_at of int | Io_error_at of int

type counter = {
  mutable c_ops : int;
  mutable c_log : (string * string) list;  (** reversed (op, path) *)
  mutable c_halted : bool;
  c_inject : inject;
  c_mutex : Mutex.t;
}

let op_count c = c.c_ops

let op_log c = List.rev c.c_log

let halted c = c.c_halted

(* A sink handle for creates issued after the simulated crash: the writes
   go nowhere, exactly as they would on a dead machine. *)
let dead_file path =
  {
    f_path = path;
    f_pread =
      (fun ~off:_ ~len:_ -> io_error "pread %s: machine crashed" path);
    f_append = (fun _ -> ());
    f_size = (fun () -> 0);
    f_fsync = (fun () -> ());
    f_close = (fun () -> ());
  }

let counting ?(inject = No_fault) inner =
  let c =
    {
      c_ops = 0;
      c_log = [];
      c_halted = false;
      c_inject = inject;
      c_mutex = Mutex.create ();
    }
  in
  (* Returns true when the durability operation should execute and false
     to silently suppress it (after a simulated crash even the unwind
     path's deletes and fsyncs must not reach the filesystem). Raises at
     the armed injection point. *)
  let note op path =
    let verdict =
      Lt_util.Mutexes.with_lock c.c_mutex (fun () ->
          if c.c_halted then `Suppress
          else begin
            let k = c.c_ops in
            c.c_ops <- k + 1;
            c.c_log <- (op, path) :: c.c_log;
            match c.c_inject with
            | Crash_at p when k = p ->
                c.c_halted <- true;
                `Crash k
            | Io_error_at p when k = p -> `Fail k
            | _ -> `Run
          end)
    in
    match verdict with
    | `Run -> true
    | `Suppress -> false
    | `Crash k -> raise (Crash_point k)
    | `Fail k -> io_error "%s %s: injected fault at durability point %d" op path k
  in
  let wrap_file f =
    {
      f with
      f_append = (fun s -> if note "append" f.f_path then f.f_append s);
      f_fsync = (fun () -> if note "fsync" f.f_path then f.f_fsync ());
    }
  in
  let vfs =
    {
      inner with
      v_create =
        (fun path ->
          if note "create" path then wrap_file (inner.v_create path)
          else dead_file path);
      v_rename =
        (fun ~src ~dst -> if note "rename" src then inner.v_rename ~src ~dst);
      v_delete = (fun path -> if note "delete" path then inner.v_delete path);
      v_sync_dir =
        (fun path -> if note "sync_dir" path then inner.v_sync_dir path);
    }
  in
  (c, vfs)
