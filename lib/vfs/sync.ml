type stats = { copied : int; deleted : int; bytes : int }

let add a b =
  { copied = a.copied + b.copied; deleted = a.deleted + b.deleted; bytes = a.bytes + b.bytes }

let empty_stats = { copied = 0; deleted = 0; bytes = 0 }

(* Recursively list the relative paths of files under [dir]. A name is a
   directory exactly when listing it yields entries; empty directories
   are invisible, which is fine for a LittleTable tree. *)
let rec walk vfs dir =
  let entries = try Vfs.readdir vfs dir with Vfs.Io_error _ -> [] in
  List.concat_map
    (fun name ->
      let path = Filename.concat dir name in
      let children = walk vfs path in
      if children = [] && Vfs.exists vfs path then [ path ]
      else children)
    entries

let relative ~root path =
  let prefix = root ^ "/" in
  if String.length path > String.length prefix
     && String.sub path 0 (String.length prefix) = prefix
  then String.sub path (String.length prefix) (String.length path - String.length prefix)
  else path

let file_size_of vfs path =
  let f = Vfs.open_read vfs path in
  Fun.protect ~finally:(fun () -> Vfs.close vfs f) (fun () -> Vfs.file_size vfs f)

let differs ~src ~src_path ~dst ~dst_path =
  if not (Vfs.exists dst dst_path) then true
  else begin
    let ssize = file_size_of src src_path in
    let dsize = file_size_of dst dst_path in
    (* Size first; equal sizes fall back to contents (tablets are
       immutable so this triggers rarely — mostly for descriptors). *)
    ssize <> dsize || Vfs.read_all src src_path <> Vfs.read_all dst dst_path
  end

(* Copy through a temporary + atomic rename: a crash mid-copy must never
   leave a torn file at the destination name — a half-written DESCRIPTOR
   would make the spare unopenable. Leftover [.sync.tmp] files are pruned
   by the next pass like any other file absent at the source. *)
let copy_file ~src ~src_path ~dst ~dst_path =
  let data = Vfs.read_all src src_path in
  Vfs.mkdir_p dst (Filename.dirname dst_path);
  let tmp_path = dst_path ^ ".sync.tmp" in
  let f = Vfs.create dst tmp_path in
  (try
     Vfs.append dst f data;
     Vfs.fsync dst f;
     Vfs.close dst f
   with e ->
     (try Vfs.close dst f with Vfs.Io_error _ -> ());
     (try Vfs.delete dst tmp_path with Vfs.Io_error _ -> ());
     raise e);
  Vfs.rename dst ~src:tmp_path ~dst:dst_path;
  Vfs.sync_dir dst (Filename.dirname dst_path);
  String.length data

(* Descriptors last: a spare must never see a descriptor that references
   a tablet it does not yet have. *)
let copy_order rel_paths =
  let is_descriptor p = Filename.basename p = "DESCRIPTOR" in
  let tablets, descriptors = List.partition (fun p -> not (is_descriptor p)) rel_paths in
  tablets @ descriptors

let pass ~src ~src_dir ~dst ~dst_dir () =
  let src_files = List.map (relative ~root:src_dir) (walk src src_dir) in
  let dst_files = List.map (relative ~root:dst_dir) (walk dst dst_dir) in
  let stats = ref empty_stats in
  List.iter
    (fun rel ->
      let src_path = Filename.concat src_dir rel in
      let dst_path = Filename.concat dst_dir rel in
      if differs ~src ~src_path ~dst ~dst_path then begin
        let bytes = copy_file ~src ~src_path ~dst ~dst_path in
        stats := add !stats { copied = 1; deleted = 0; bytes }
      end)
    (copy_order src_files);
  (* Prune files deleted at the source (merged-away tablets). *)
  List.iter
    (fun rel ->
      if not (List.mem rel src_files) then begin
        (try Vfs.delete dst (Filename.concat dst_dir rel) with Vfs.Io_error _ -> ());
        stats := add !stats { copied = 0; deleted = 1; bytes = 0 }
      end)
    dst_files;
  !stats

let until_stable ?(max_passes = 10) ~src ~src_dir ~dst ~dst_dir () =
  let rec go total passes =
    let s = pass ~src ~src_dir ~dst ~dst_dir () in
    let total = add total s in
    if s.copied = 0 && s.deleted = 0 then (total, true)
    else if passes + 1 >= max_passes then (total, false)
    else go total (passes + 1)
  in
  go empty_stats 0
