(** Analytic spinning-disk cost model.

    The paper's evaluation ran on a 7,200 RPM drive with roughly 8 ms
    combined seek and rotational latency and 120 MB/s sequential
    throughput (§5.1.1). We do not have that hardware, so the benchmarks
    run the engine against a real (or in-memory) filesystem while this
    model replays the exact I/O pattern the engine issues and charges it
    disk time: a seek whenever the head must move, transfer time at the
    sequential rate otherwise, with configurable filesystem readahead and
    a drive cache that serves re-reads and read-ahead hits for free.

    Files are laid out contiguously in a virtual LBA space in creation
    order — matching the paper's observation that ext4 stores tablets of
    1 GB or less in a single extent (§3.5). Opening a file charges one
    seek (the inode read), which together with the trailer and footer
    reads yields the three-seek footer cost the paper derives.

    The model reproduces the paper's published shapes: Figure 5's
    throughput collapse as a scan interleaves reads across many tablets,
    and Figure 6's ~4-seek versus ~1-seek first-row latency slopes. *)

type config = {
  seek_us : float;  (** combined seek + rotational latency, default 8000 *)
  seq_bytes_per_us : float;  (** sequential rate, default 120 MB/s *)
  readahead : int;  (** filesystem readahead, default 128 KiB *)
  cache_bytes : int;  (** drive cache, default 64 MiB *)
  spindles : int;
      (** independent disks in the modeled volume, default 1. Files are
          striped whole across spindles round-robin; each spindle has its
          own head and busy clock, and each issuing domain its own
          virtual clock, so concurrent issuers (parallel scans) overlap
          on distinct spindles. {!elapsed_s} is then the makespan rather
          than the sum; with 1 spindle and 1 issuer the two coincide. *)
}

val default_config : config

(** [config ()] is {!default_config} with optional overrides. *)
val config :
  ?seek_us:float ->
  ?seq_bytes_per_us:float ->
  ?readahead:int ->
  ?cache_bytes:int ->
  ?spindles:int ->
  unit ->
  config

type t

val create : ?config:config -> unit -> t

(** {1 Results} *)

val elapsed_s : t -> float
(** Modeled disk time since creation or the last {!reset}: the makespan
    over all spindles and issuing domains (a plain running sum when both
    are 1). *)

val seeks : t -> int

val bytes_read : t -> int
(** Bytes physically transferred from the platter (includes readahead). *)

val bytes_written : t -> int

(** Zero the elapsed time and counters; keep layout and cache. *)
val reset : t -> unit

(** Drop the drive cache (the benchmarks' "clear all caches" step). *)
val clear_cache : t -> unit

(** Replace the readahead setting (Figure 5 compares 128 kB and 1 MB). *)
val set_readahead : t -> int -> unit

(** {1 Event notifications} (called by [Vfs.with_model]) *)

val note_open : t -> string -> unit
val note_create : t -> string -> unit
val note_read : t -> string -> off:int -> len:int -> unit
val note_write : t -> string -> off:int -> len:int -> unit
val note_fsync : t -> string -> unit
val note_rename : t -> string -> string -> unit
val note_delete : t -> string -> unit
