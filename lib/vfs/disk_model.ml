type config = {
  seek_us : float;
  seq_bytes_per_us : float;
  readahead : int;
  cache_bytes : int;
  spindles : int;
}

let default_config =
  {
    seek_us = 8000.0;
    seq_bytes_per_us = 120.0; (* 120 MB/s = 120 bytes/us *)
    readahead = 128 * 1024;
    cache_bytes = 64 * 1024 * 1024;
    spindles = 1;
  }

let config ?(seek_us = default_config.seek_us)
    ?(seq_bytes_per_us = default_config.seq_bytes_per_us)
    ?(readahead = default_config.readahead)
    ?(cache_bytes = default_config.cache_bytes)
    ?(spindles = default_config.spindles) () =
  { seek_us; seq_bytes_per_us; readahead; cache_bytes; spindles }

(* Cached physical ranges [lo, hi), evicted FIFO by total bytes. *)
type cached = { lo : int; hi : int }

(* Time accounting is virtual and channel-based so concurrent issuers
   (parallel-scan worker domains) overlap correctly: each issuing domain
   has a channel clock (when that issuer becomes free), each spindle a
   busy clock (when the platter becomes free). An op starts at
   [max channel spindle_busy], runs for its cost, and advances both;
   [elapsed_s] is the makespan — when the last op finishes. With one
   issuer and one spindle every start equals the previous finish and the
   makespan degenerates to the old straight sum of costs. *)
type t = {
  mutable cfg : config;
  mutable finish_us : float;  (** makespan: max finish over all ops *)
  mutable seeks : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  heads : int array;  (** per-spindle physical position *)
  busy : float array;  (** per-spindle busy-until clock *)
  channels : (int, float) Hashtbl.t;  (** per-domain issuer clock *)
  mutable next_extent : int;  (** allocation cursor *)
  bases : (string, int) Hashtbl.t;  (** file -> extent base *)
  sizes : (string, int) Hashtbl.t;  (** file -> current size *)
  spindle_of : (string, int) Hashtbl.t;  (** file -> spindle *)
  mutable next_spindle : int;  (** round-robin placement cursor *)
  cache : cached Queue.t;
  mutable cache_used : int;
  windows : (string, int * int) Hashtbl.t;
      (** per-file OS readahead window: last fetched [lo, hi) *)
  mutex : Mutex.t;
}

(* Align extents so consecutive files do not share readahead windows. *)
let extent_align = 1 lsl 20

let create ?(config = default_config) () =
  let spindles = max 1 config.spindles in
  {
    cfg = config;
    finish_us = 0.0;
    seeks = 0;
    bytes_read = 0;
    bytes_written = 0;
    heads = Array.make spindles 0;
    busy = Array.make spindles 0.0;
    channels = Hashtbl.create 8;
    next_extent = 0;
    bases = Hashtbl.create 64;
    sizes = Hashtbl.create 64;
    spindle_of = Hashtbl.create 64;
    next_spindle = 0;
    cache = Queue.create ();
    cache_used = 0;
    windows = Hashtbl.create 64;
    mutex = Mutex.create ();
  }

let locked t f = Lt_util.Mutexes.with_lock t.mutex f

let elapsed_s t = locked t (fun () -> t.finish_us /. 1e6)

let seeks t = locked t (fun () -> t.seeks)

let bytes_read t = locked t (fun () -> t.bytes_read)

let bytes_written t = locked t (fun () -> t.bytes_written)

let reset t =
  locked t (fun () ->
      t.finish_us <- 0.0;
      Array.fill t.busy 0 (Array.length t.busy) 0.0;
      Hashtbl.reset t.channels;
      t.seeks <- 0;
      t.bytes_read <- 0;
      t.bytes_written <- 0)

let clear_cache t =
  locked t (fun () ->
      Queue.clear t.cache;
      t.cache_used <- 0;
      Hashtbl.reset t.windows)

let set_readahead t n = locked t (fun () -> t.cfg <- { t.cfg with readahead = n })

let base_of t path =
  match Hashtbl.find_opt t.bases path with
  | Some b -> b
  | None ->
      (* Unknown file (pre-existing on a real fs): allocate lazily. *)
      let b = t.next_extent in
      t.next_extent <- t.next_extent + extent_align;
      Hashtbl.replace t.bases path b;
      Hashtbl.replace t.sizes path 0;
      b

(* Files are striped round-robin across spindles at first touch, like a
   multi-disk volume placing whole extents; the assignment follows the
   file through renames. *)
let spindle_of t path =
  match Hashtbl.find_opt t.spindle_of path with
  | Some s -> s
  | None ->
      let s = t.next_spindle mod Array.length t.heads in
      t.next_spindle <- t.next_spindle + 1;
      Hashtbl.replace t.spindle_of path s;
      s

let commit t ~spindle cost_us =
  let ch = (Domain.self () :> int) in
  let ch_now = Option.value ~default:0.0 (Hashtbl.find_opt t.channels ch) in
  let start = Float.max ch_now t.busy.(spindle) in
  let fin = start +. cost_us in
  t.busy.(spindle) <- fin;
  Hashtbl.replace t.channels ch fin;
  if fin > t.finish_us then t.finish_us <- fin

let cache_insert t lo hi =
  if t.cfg.cache_bytes > 0 then begin
    Queue.push { lo; hi } t.cache;
    t.cache_used <- t.cache_used + (hi - lo);
    while t.cache_used > t.cfg.cache_bytes && not (Queue.is_empty t.cache) do
      let old = Queue.pop t.cache in
      t.cache_used <- t.cache_used - (old.hi - old.lo)
    done
  end

let cache_covers t lo hi =
  (* The cache holds few, large ranges; a linear scan is fine. A range is
     served from cache only if a single cached extent covers it, which is
     the common readahead-hit case. *)
  Queue.fold (fun acc c -> acc || (c.lo <= lo && hi <= c.hi)) false t.cache

(* Opening a file costs one repositioning: the inode read (§3.5 counts it
   as the first of the three seeks needed to reach a footer). *)
let note_open t path =
  locked t (fun () ->
      ignore (base_of t path);
      let sp = spindle_of t path in
      t.seeks <- t.seeks + 1;
      commit t ~spindle:sp t.cfg.seek_us)

let note_create t path =
  locked t (fun () ->
      let b = t.next_extent in
      t.next_extent <- t.next_extent + extent_align;
      Hashtbl.replace t.bases path b;
      Hashtbl.replace t.sizes path 0;
      ignore (spindle_of t path))

let grow_extent t path upto =
  (* Keep allocation cursor ahead of large files so extents stay disjoint. *)
  let base = base_of t path in
  let needed = base + upto in
  if needed > t.next_extent - extent_align then begin
    let blocks = ((needed / extent_align) + 2) * extent_align in
    t.next_extent <- max t.next_extent blocks
  end

let note_read t path ~off ~len =
  if len > 0 then
    locked t (fun () ->
        let base = base_of t path in
        let sp = spindle_of t path in
        let size = Option.value ~default:0 (Hashtbl.find_opt t.sizes path) in
        let lo = base + off in
        let hi = lo + len in
        let file_end = base + max size len in
        if cache_covers t lo hi then ()
        else begin
          (* Sequential-readahead model: the OS keeps a per-file window.
             A read starting inside (or at the end of) the last fetched
             window continues the stream — no repositioning, and the
             window slides forward by at least the readahead size. A read
             elsewhere seeks and starts a new window. *)
          let win = Hashtbl.find_opt t.windows path in
          let sequential =
            match win with
            | Some (wlo, whi) -> lo >= wlo && lo <= whi
            | None -> false
          in
          let fetch_lo =
            match win with
            | Some (_, whi) when sequential -> max lo (min whi hi)
            | _ -> lo
          in
          (* The seek decision is physical: continuing this file's stream
             avoids a seek only if its spindle's head is still at the
             window end — interleaving streams across files on one
             spindle moves the arm and pays. *)
          let cost = ref 0.0 in
          if fetch_lo <> t.heads.(sp) then begin
            t.seeks <- t.seeks + 1;
            cost := !cost +. t.cfg.seek_us
          end;
          (* Established sequential streams get extra readahead from the
             drive's cache, shared among the active streams — the effect
             the paper observed pushing the Figure 5 plateau above the
             seek-economics floor (§5.1.5). *)
          let readahead =
            if sequential then begin
              let streams = max 1 (Hashtbl.length t.windows) in
              max t.cfg.readahead
                (min (4 * 1024 * 1024) (t.cfg.cache_bytes / (16 * streams)))
            end
            else t.cfg.readahead
          in
          let fetch_hi = max hi (min file_end (fetch_lo + readahead)) in
          let bytes = max 0 (fetch_hi - fetch_lo) in
          cost := !cost +. (float_of_int bytes /. t.cfg.seq_bytes_per_us);
          t.bytes_read <- t.bytes_read + bytes;
          t.heads.(sp) <- fetch_hi;
          Hashtbl.replace t.windows path (lo, fetch_hi);
          cache_insert t fetch_lo fetch_hi;
          commit t ~spindle:sp !cost
        end)

let note_write t path ~off ~len =
  if len > 0 then
    locked t (fun () ->
        let base = base_of t path in
        let sp = spindle_of t path in
        grow_extent t path (off + len);
        let lo = base + off in
        let cost = ref 0.0 in
        if t.heads.(sp) <> lo then begin
          t.seeks <- t.seeks + 1;
          cost := !cost +. t.cfg.seek_us
        end;
        cost := !cost +. (float_of_int len /. t.cfg.seq_bytes_per_us);
        t.bytes_written <- t.bytes_written + len;
        t.heads.(sp) <- lo + len;
        let size = Option.value ~default:0 (Hashtbl.find_opt t.sizes path) in
        Hashtbl.replace t.sizes path (max size (off + len));
        commit t ~spindle:sp !cost)

(* Writes are charged at issue time (the drive's write cache hides sync
   latency behind transfer time at these sizes), so fsync is free. *)
let note_fsync _t _path = ()

let note_rename t src dst =
  locked t (fun () ->
      (match Hashtbl.find_opt t.bases src with
      | None -> ()
      | Some b ->
          Hashtbl.remove t.bases src;
          Hashtbl.replace t.bases dst b;
          (match Hashtbl.find_opt t.sizes src with
          | Some s ->
              Hashtbl.remove t.sizes src;
              Hashtbl.replace t.sizes dst s
          | None -> ()));
      match Hashtbl.find_opt t.spindle_of src with
      | None -> ()
      | Some s ->
          Hashtbl.remove t.spindle_of src;
          Hashtbl.replace t.spindle_of dst s)

let note_delete t path =
  locked t (fun () ->
      Hashtbl.remove t.bases path;
      Hashtbl.remove t.sizes path;
      Hashtbl.remove t.spindle_of path;
      Hashtbl.remove t.windows path)
