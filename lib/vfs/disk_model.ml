type config = {
  seek_us : float;
  seq_bytes_per_us : float;
  readahead : int;
  cache_bytes : int;
}

let default_config =
  {
    seek_us = 8000.0;
    seq_bytes_per_us = 120.0; (* 120 MB/s = 120 bytes/us *)
    readahead = 128 * 1024;
    cache_bytes = 64 * 1024 * 1024;
  }

let config ?(seek_us = default_config.seek_us)
    ?(seq_bytes_per_us = default_config.seq_bytes_per_us)
    ?(readahead = default_config.readahead)
    ?(cache_bytes = default_config.cache_bytes) () =
  { seek_us; seq_bytes_per_us; readahead; cache_bytes }

(* Cached physical ranges [lo, hi), evicted FIFO by total bytes. *)
type cached = { lo : int; hi : int }

type t = {
  mutable cfg : config;
  mutable elapsed_us : float;
  mutable seeks : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable head : int;  (** current physical position *)
  mutable next_extent : int;  (** allocation cursor *)
  bases : (string, int) Hashtbl.t;  (** file -> extent base *)
  sizes : (string, int) Hashtbl.t;  (** file -> current size *)
  cache : cached Queue.t;
  mutable cache_used : int;
  windows : (string, int * int) Hashtbl.t;
      (** per-file OS readahead window: last fetched [lo, hi) *)
  mutex : Mutex.t;
}

(* Align extents so consecutive files do not share readahead windows. *)
let extent_align = 1 lsl 20

let create ?(config = default_config) () =
  {
    cfg = config;
    elapsed_us = 0.0;
    seeks = 0;
    bytes_read = 0;
    bytes_written = 0;
    head = 0;
    next_extent = 0;
    bases = Hashtbl.create 64;
    sizes = Hashtbl.create 64;
    cache = Queue.create ();
    cache_used = 0;
    windows = Hashtbl.create 64;
    mutex = Mutex.create ();
  }

let locked t f = Lt_util.Mutexes.with_lock t.mutex f

let elapsed_s t = locked t (fun () -> t.elapsed_us /. 1e6)

let seeks t = locked t (fun () -> t.seeks)

let bytes_read t = locked t (fun () -> t.bytes_read)

let bytes_written t = locked t (fun () -> t.bytes_written)

let reset t =
  locked t (fun () ->
      t.elapsed_us <- 0.0;
      t.seeks <- 0;
      t.bytes_read <- 0;
      t.bytes_written <- 0)

let clear_cache t =
  locked t (fun () ->
      Queue.clear t.cache;
      t.cache_used <- 0;
      Hashtbl.reset t.windows)

let set_readahead t n = locked t (fun () -> t.cfg <- { t.cfg with readahead = n })

let base_of t path =
  match Hashtbl.find_opt t.bases path with
  | Some b -> b
  | None ->
      (* Unknown file (pre-existing on a real fs): allocate lazily. *)
      let b = t.next_extent in
      t.next_extent <- t.next_extent + extent_align;
      Hashtbl.replace t.bases path b;
      Hashtbl.replace t.sizes path 0;
      b

let charge_seek t =
  t.seeks <- t.seeks + 1;
  t.elapsed_us <- t.elapsed_us +. t.cfg.seek_us

let charge_transfer t bytes =
  t.elapsed_us <- t.elapsed_us +. (float_of_int bytes /. t.cfg.seq_bytes_per_us)

let cache_insert t lo hi =
  if t.cfg.cache_bytes > 0 then begin
    Queue.push { lo; hi } t.cache;
    t.cache_used <- t.cache_used + (hi - lo);
    while t.cache_used > t.cfg.cache_bytes && not (Queue.is_empty t.cache) do
      let old = Queue.pop t.cache in
      t.cache_used <- t.cache_used - (old.hi - old.lo)
    done
  end

let cache_covers t lo hi =
  (* The cache holds few, large ranges; a linear scan is fine. A range is
     served from cache only if a single cached extent covers it, which is
     the common readahead-hit case. *)
  Queue.fold (fun acc c -> acc || (c.lo <= lo && hi <= c.hi)) false t.cache

(* Opening a file costs one repositioning: the inode read (§3.5 counts it
   as the first of the three seeks needed to reach a footer). *)
let note_open t path =
  locked t (fun () ->
      ignore (base_of t path);
      charge_seek t)

let note_create t path =
  locked t (fun () ->
      let b = t.next_extent in
      t.next_extent <- t.next_extent + extent_align;
      Hashtbl.replace t.bases path b;
      Hashtbl.replace t.sizes path 0)

let grow_extent t path upto =
  (* Keep allocation cursor ahead of large files so extents stay disjoint. *)
  let base = base_of t path in
  let needed = base + upto in
  if needed > t.next_extent - extent_align then begin
    let blocks = ((needed / extent_align) + 2) * extent_align in
    t.next_extent <- max t.next_extent blocks
  end

let note_read t path ~off ~len =
  if len > 0 then
    locked t (fun () ->
        let base = base_of t path in
        let size = Option.value ~default:0 (Hashtbl.find_opt t.sizes path) in
        let lo = base + off in
        let hi = lo + len in
        let file_end = base + max size len in
        if cache_covers t lo hi then ()
        else begin
          (* Sequential-readahead model: the OS keeps a per-file window.
             A read starting inside (or at the end of) the last fetched
             window continues the stream — no repositioning, and the
             window slides forward by at least the readahead size. A read
             elsewhere seeks and starts a new window. *)
          let win = Hashtbl.find_opt t.windows path in
          let sequential =
            match win with
            | Some (wlo, whi) -> lo >= wlo && lo <= whi
            | None -> false
          in
          let fetch_lo =
            match win with
            | Some (_, whi) when sequential -> max lo (min whi hi)
            | _ -> lo
          in
          (* The seek decision is physical: continuing this file's stream
             avoids a seek only if the head is still at its window end —
             interleaving streams across files moves the arm and pays. *)
          if fetch_lo <> t.head then charge_seek t;
          (* Established sequential streams get extra readahead from the
             drive's cache, shared among the active streams — the effect
             the paper observed pushing the Figure 5 plateau above the
             seek-economics floor (§5.1.5). *)
          let readahead =
            if sequential then begin
              let streams = max 1 (Hashtbl.length t.windows) in
              max t.cfg.readahead
                (min (4 * 1024 * 1024) (t.cfg.cache_bytes / (16 * streams)))
            end
            else t.cfg.readahead
          in
          let fetch_hi = max hi (min file_end (fetch_lo + readahead)) in
          let bytes = max 0 (fetch_hi - fetch_lo) in
          charge_transfer t bytes;
          t.bytes_read <- t.bytes_read + bytes;
          t.head <- fetch_hi;
          Hashtbl.replace t.windows path (lo, fetch_hi);
          cache_insert t fetch_lo fetch_hi
        end)

let note_write t path ~off ~len =
  if len > 0 then
    locked t (fun () ->
        let base = base_of t path in
        grow_extent t path (off + len);
        let lo = base + off in
        if t.head <> lo then charge_seek t;
        charge_transfer t len;
        t.bytes_written <- t.bytes_written + len;
        t.head <- lo + len;
        let size = Option.value ~default:0 (Hashtbl.find_opt t.sizes path) in
        Hashtbl.replace t.sizes path (max size (off + len)))

(* Writes are charged at issue time (the drive's write cache hides sync
   latency behind transfer time at these sizes), so fsync is free. *)
let note_fsync _t _path = ()

let note_rename t src dst =
  locked t (fun () ->
      match Hashtbl.find_opt t.bases src with
      | None -> ()
      | Some b ->
          Hashtbl.remove t.bases src;
          Hashtbl.replace t.bases dst b;
          (match Hashtbl.find_opt t.sizes src with
          | Some s ->
              Hashtbl.remove t.sizes src;
              Hashtbl.replace t.sizes dst s
          | None -> ()))

let note_delete t path =
  locked t (fun () ->
      Hashtbl.remove t.bases path;
      Hashtbl.remove t.sizes path;
      Hashtbl.remove t.windows path)
