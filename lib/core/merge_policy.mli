(** The tablet merge policy (§3.4.1, §3.4.2, and the appendix).

    To keep the number of tablets a query must touch logarithmic without
    rewriting old data over and over, LittleTable "orders tablets by their
    timespans' lower bounds and merges the oldest adjacent pair such that
    the newer one is at least half the size of the older
    (|t_i| <= 2 |t_{i+1}|). It includes in this merge any newer tablets
    adjacent to this pair, up to a maximum tablet size."

    Two further rules from §3.4.2: tablets from different time periods
    (4-hour / day / week, as classified {e at merge time}) are never
    merged together, and a merge whose inputs rolled over from a smaller
    period into a larger one is delayed by a pseudorandom fraction of the
    larger period to spread the rollover merge load across tables.

    The appendix proves (and [test/test_merge_policy.ml] property-checks)
    that repeating this to a fixpoint leaves O(log T) tablets and rewrites
    any one row O(log T) times. *)

(** What the policy needs to know about each on-disk tablet. *)
type input = {
  id : int;
  size : int;  (** bytes *)
  min_ts : int64;
  max_ts : int64;
  eligible_at : int64;  (** no merging before this time (write + rollover delays) *)
  stale_layout : bool;
      (** the tablet should be stored column-major (its newest row aged
          past [Config.columnar_age]) but is not — makes it a rewrite
          candidate even when the size rule is at a fixpoint *)
}

(** A run of adjacent tablets to merge, in timespan order. *)
type plan = { ids : int list }

(** [plan ~now ~max_tablet_size inputs] — [inputs] in any order — is the
    run the paper's policy merges next, or [None] at a fixpoint.
    Candidates are grouped by [Period.bin ~now min_ts] — the concrete
    4-hour span, day, or week the tablet's data falls in as of [now]; a
    group is a maximal run of {e consecutive} tablets of one period all
    eligible at [now]. Within each group (oldest first) the first adjacent pair with
    [size t_i <= 2 * size t_{i+1}] seeds the run, extended right while the
    total stays within [max_tablet_size]. When the size rule is at a
    fixpoint, the oldest eligible tablet with [stale_layout] becomes a
    single-tablet rewrite plan (the background row-to-columnar pass). *)
val plan : now:int64 -> max_tablet_size:int -> input list -> plan option

(** The bare size-sequence policy of the appendix (no periods, no
    eligibility): given sizes oldest-first, returns the [(start, len)] of
    the run to merge. Exposed for the logarithmic-bound property tests. *)
val plan_sizes : max_tablet_size:int -> int array -> (int * int) option
