open Lt_util

let put_be64 buf x =
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical x (i * 8)) land 0xff))
  done

let get_be64 cur =
  let x = ref 0L in
  for _ = 0 to 7 do
    x := Int64.logor (Int64.shift_left !x 8) (Int64.of_int (Binio.get_u8 cur))
  done;
  !x

let flip_i64 x = Int64.logxor x Int64.min_int

(* IEEE-754 total order: flip all bits of negatives, just the sign bit of
   non-negatives. Monotone w.r.t. Float.compare (including -0.0 < 0.0). *)
let double_to_ordered f =
  let bits = Int64.bits_of_float f in
  if Int64.compare bits 0L < 0 then Int64.lognot bits else flip_i64 bits

let double_of_ordered x =
  if Int64.compare x 0L < 0 then Int64.float_of_bits (flip_i64 x)
  else Int64.float_of_bits (Int64.lognot x)

let encode_string buf s =
  String.iter
    (fun c ->
      match c with
      | '\x00' -> Buffer.add_string buf "\x01\x01"
      | '\x01' -> Buffer.add_string buf "\x01\x02"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\x00'

let decode_string cur =
  let b = Buffer.create 16 in
  let rec go () =
    match Binio.get_u8 cur with
    | 0x00 -> Buffer.contents b
    | 0x01 -> (
        match Binio.get_u8 cur with
        | 0x01 ->
            Buffer.add_char b '\x00';
            go ()
        | 0x02 ->
            Buffer.add_char b '\x01';
            go ()
        | n ->
            raise (Binio.Corrupt (Printf.sprintf "key string: bad escape %02x" n)))
    | n ->
        Buffer.add_char b (Char.chr n);
        go ()
  in
  go ()

let encode_value buf = function
  | Value.Int32 x ->
      let x = Int32.logxor x Int32.min_int in
      for i = 3 downto 0 do
        Buffer.add_char buf
          (Char.chr (Int32.to_int (Int32.shift_right_logical x (i * 8)) land 0xff))
      done
  | Value.Int64 x -> put_be64 buf (flip_i64 x)
  | Value.Timestamp x -> put_be64 buf (flip_i64 x)
  | Value.Double f -> put_be64 buf (double_to_ordered f)
  | Value.String s -> encode_string buf s
  | Value.Blob s -> encode_string buf s

(* Exact size of [encode_value]'s output, without producing it: strings
   pay one extra byte per escaped 0x00/0x01 plus the terminator. *)
let encoded_size = function
  | Value.Int32 _ -> 4
  | Value.Int64 _ | Value.Timestamp _ | Value.Double _ -> 8
  | Value.String s | Value.Blob s ->
      let esc = ref 0 in
      String.iter (fun c -> if c = '\x00' || c = '\x01' then incr esc) s;
      String.length s + !esc + 1

let key_size schema row =
  Array.fold_left
    (fun acc i -> acc + encoded_size row.(i))
    0 (Schema.pkey schema)

let decode_value ctype cur =
  match ctype with
  | Value.T_int32 ->
      let x = ref 0l in
      for _ = 0 to 3 do
        x :=
          Int32.logor (Int32.shift_left !x 8) (Int32.of_int (Binio.get_u8 cur))
      done;
      Value.Int32 (Int32.logxor !x Int32.min_int)
  | Value.T_int64 -> Value.Int64 (flip_i64 (get_be64 cur))
  | Value.T_timestamp -> Value.Timestamp (flip_i64 (get_be64 cur))
  | Value.T_double -> Value.Double (double_of_ordered (get_be64 cur))
  | Value.T_string -> Value.String (decode_string cur)
  | Value.T_blob -> Value.Blob (decode_string cur)

let encode_key schema row =
  let buf = Buffer.create 32 in
  Array.iter (fun i -> encode_value buf row.(i)) (Schema.pkey schema);
  Buffer.contents buf

let encode_key_with_prefixes schema row =
  let buf = Buffer.create 32 in
  let pkey = Schema.pkey schema in
  let k = Array.length pkey in
  let prefixes = ref [] in
  Array.iteri
    (fun i col ->
      encode_value buf row.(col);
      if i < k - 1 then prefixes := Buffer.contents buf :: !prefixes)
    pkey;
  (Buffer.contents buf, List.rev !prefixes)

let encode_prefix schema values =
  let pkey = Schema.pkey schema in
  let cols = Schema.columns schema in
  let n = List.length values in
  if n > Array.length pkey then
    raise (Schema.Invalid "key prefix longer than the primary key");
  let buf = Buffer.create 32 in
  List.iteri
    (fun i v ->
      let col = cols.(pkey.(i)) in
      if not (Value.matches col.Schema.ctype v) then
        raise
          (Schema.Invalid
             (Printf.sprintf "key prefix: column %S expects %s, got %s"
                col.Schema.name
                (Value.type_name col.Schema.ctype)
                (Value.type_name (Value.type_of v))));
      encode_value buf v)
    values;
  Buffer.contents buf

let decode_key schema key =
  let cur = Binio.cursor key in
  let pkey = Schema.pkey schema in
  let cols = Schema.columns schema in
  let vs =
    Array.map (fun i -> decode_value cols.(i).Schema.ctype cur) pkey
  in
  Binio.expect_end cur;
  vs

let ts_of_key key =
  let n = String.length key in
  if n < 8 then invalid_arg "ts_of_key: key shorter than 8 bytes";
  let cur = Binio.cursor ~pos:(n - 8) key in
  flip_i64 (get_be64 cur)

let prefix_succ p =
  let n = String.length p in
  let b = Bytes.of_string p in
  let rec go i =
    if i < 0 then None
    else if Bytes.get b i = '\xff' then go (i - 1)
    else begin
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) + 1));
      Some (Bytes.sub_string b 0 (i + 1))
    end
  in
  go (n - 1)
