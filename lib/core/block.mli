(** On-disk tablet blocks.

    "LittleTable writes an on-disk tablet as a sequence of rows sorted by
    their primary keys and grouped into 64 kB blocks" (§3.2). A block is
    the unit of read, decompression, and checksum. The serialized form is

    {v varint row_count | u32 offsets[row_count] | payload v}

    where [payload] holds, per row, a length-prefixed encoded key and a
    length-prefixed value. The offsets array supports the binary search
    within a block that query execution performs after the index search
    (§3.2). *)

type entry = { key : string; value : string }

(** {1 Building} *)

type builder

val builder : unit -> builder

(** Keys must be added in strictly ascending order (checked). *)
val add : builder -> key:string -> value:string -> unit

(** [add_enc b ~key ~value_size ~encode] is {!add} without the value
    string: [encode] appends the value encoding (exactly [value_size]
    bytes, checked) straight into the block payload. This is how the
    flush path writes memtable rows without a per-row intermediate
    string. *)
val add_enc :
  builder -> key:string -> value_size:int -> encode:(Buffer.t -> unit) -> unit

val entry_count : builder -> int

(** Bytes the block will occupy before compression. *)
val raw_size : builder -> int

val last_key : builder -> string option
val first_key : builder -> string option

(** Serialize and reset the builder. *)
val finish : builder -> string

(** {1 Reading} *)

type t

(** @raise Lt_util.Binio.Corrupt on malformed input. *)
val decode : string -> t

val count : t -> int

val entry : t -> int -> entry

val key : t -> int -> string

(** The decoded block's backing bytes — pair with {!value_span} for
    copy-free value access. *)
val data : t -> string

(** [value_span t i] is the [(offset, length)] window of entry [i]'s
    value encoding within {!data}, so scans can decode rows straight out
    of the block without allocating a value string per row. *)
val value_span : t -> int -> int * int

(** [search_geq t k] is the smallest index whose key is [>= k], or
    [count t] when every key is smaller. *)
val search_geq : t -> string -> int
