(** On-disk tablet blocks.

    "LittleTable writes an on-disk tablet as a sequence of rows sorted by
    their primary keys and grouped into 64 kB blocks" (§3.2). A block is
    the unit of read, decompression, and checksum. The serialized form is

    {v varint row_count | u32 offsets[row_count] | payload v}

    where [payload] holds, per row, a length-prefixed encoded key and a
    length-prefixed value. The offsets array supports the binary search
    within a block that query execution performs after the index search
    (§3.2).

    Blocks also come in a self-describing {e column-major} form (chosen
    at merge time for timespans older than [Config.columnar_age], after
    the HTAP layout split of real-time LSM-trees):

    {v u8 0xC7 | u8 version | varint rows | varint ncols
       | key section
       | per non-key column: u8 presence | [bitmap] | section v}

    where a section is [u8 codec | varint comp_len | varint raw_len |
    payload], independently LZ-compressed when that shrinks it. Key
    columns are not stored as sections — they are recovered from the
    key section's order-preserving encodings. A presence bitmap (bit
    set = value stored) elides cells equal to the stored schema's
    column default, and readers decompress only the columns a scan
    references. *)

type entry = { key : string; value : string }

type layout = Row_major | Col_major

(** {1 Building} *)

type builder

val builder : unit -> builder

(** Keys must be added in strictly ascending order (checked). *)
val add : builder -> key:string -> value:string -> unit

(** [add_enc b ~key ~value_size ~encode] is {!add} without the value
    string: [encode] appends the value encoding (exactly [value_size]
    bytes, checked) straight into the block payload. This is how the
    flush path writes memtable rows without a per-row intermediate
    string. *)
val add_enc :
  builder -> key:string -> value_size:int -> encode:(Buffer.t -> unit) -> unit

val entry_count : builder -> int

(** Bytes the block will occupy before compression. *)
val raw_size : builder -> int

val last_key : builder -> string option
val first_key : builder -> string option

(** Serialize and reset the builder. *)
val finish : builder -> string

(** {1 Columnar building} *)

type col_builder

(** Rows are buffered (not streamed) because every column's run must be
    contiguous in the output; the builder is sized and flushed by the
    tablet writer exactly like the row builder. *)
val col_builder : Schema.t -> col_builder

(** Keys must be added in strictly ascending order (checked); the row is
    a full validated row under the builder's schema. *)
val col_add : col_builder -> key:string -> Value.t array -> unit

val col_count : col_builder -> int

(** Approximate serialized size, for the flush threshold. *)
val col_raw_size : col_builder -> int

val col_first_key : col_builder -> string option
val col_last_key : col_builder -> string option

(** Serialize and reset the builder; also returns the per-column
    min/max/sum stats the tablet writer records in its footer so
    aggregate queries can answer whole blocks without reading them. *)
val col_finish : col_builder -> string * Agg.col_stats array

(** {1 Reading} *)

type t

(** Decode a row-major block.
    @raise Lt_util.Binio.Corrupt on malformed input. *)
val decode : string -> t

(** Decode a column-major block written under the given (stored)
    schema. Keys are materialized eagerly; column sections stay
    compressed until {!read_column}/{!columnar_rows} asks for them.
    @raise Lt_util.Binio.Corrupt on malformed input. *)
val decode_columnar : Schema.t -> string -> t

val layout : t -> layout

val count : t -> int

(** Row-major only. @raise Invalid_argument on a columnar block. *)
val entry : t -> int -> entry

val key : t -> int -> string

(** The decoded block's backing bytes — pair with {!value_span} for
    copy-free value access. *)
val data : t -> string

(** [value_span t i] is the [(offset, length)] window of entry [i]'s
    value encoding within {!data}, so scans can decode rows straight out
    of the block without allocating a value string per row. Row-major
    only. @raise Invalid_argument on a columnar block. *)
val value_span : t -> int -> int * int

(** [search_geq t k] is the smallest index whose key is [>= k], or
    [count t] when every key is smaller. *)
val search_geq : t -> string -> int

(** {1 Columnar reading} *)

(** [read_column t schema c] materializes column [c] (stored-schema
    index) of a columnar block: decompresses and decodes just that
    column's section, or recovers a primary-key column from the keys.
    Absent cells take the stored schema's default. *)
val read_column : t -> Schema.t -> int -> Value.t array

(** [columnar_rows t schema ?cols ()] materializes a columnar block's
    rows under its stored schema. Primary-key columns are always filled
    from the keys; non-key columns are decoded only when listed in
    [cols] (default: all), others keep their schema defaults. Returns
    the rows and the number of column sections actually decoded. *)
val columnar_rows :
  t -> Schema.t -> ?cols:int list -> unit -> Value.t array array * int
