type t = {
  (* One private lock per counter block: [note_*] callers already hold
     assorted table locks, but [read] and [reset] run from exporter and
     bench threads that hold none of them. The mutex is uncontended on
     the hot path and makes snapshots coherent instead of merely
     field-wise monotonic. *)
  m : Mutex.t;
  mutable rows_inserted : int;
  mutable insert_batches : int;
  mutable rows_returned : int;
  mutable rows_scanned : int;
  mutable queries : int;
  mutable flushes : int;
  mutable flushed_bytes : int;
  mutable merges : int;
  mutable merged_bytes_in : int;
  mutable merged_bytes_out : int;
  mutable tablets_expired : int;
  mutable flush_retries : int;
  mutable tablets_quarantined : int;
  mutable blocks_footer_answered : int;
  mutable columns_decoded : int;
}

type cache_snapshot = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_inserted_bytes : int;
  cache_resident_bytes : int;
}

let no_cache =
  {
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    cache_inserted_bytes = 0;
    cache_resident_bytes = 0;
  }

type snapshot = {
  rows_inserted : int;
  insert_batches : int;
  rows_returned : int;
  rows_scanned : int;
  queries : int;
  flushes : int;
  flushed_bytes : int;
  merges : int;
  merged_bytes_in : int;
  merged_bytes_out : int;
  tablets_expired : int;
  flush_retries : int;
  tablets_quarantined : int;
  blocks_footer_answered : int;
  columns_decoded : int;
  bytes_written : int;
  cache : cache_snapshot;
}

let create () =
  {
    m = Mutex.create ();
    rows_inserted = 0;
    insert_batches = 0;
    rows_returned = 0;
    rows_scanned = 0;
    queries = 0;
    flushes = 0;
    flushed_bytes = 0;
    merges = 0;
    merged_bytes_in = 0;
    merged_bytes_out = 0;
    tablets_expired = 0;
    flush_retries = 0;
    tablets_quarantined = 0;
    blocks_footer_answered = 0;
    columns_decoded = 0;
  }

let reset (t : t) =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.rows_inserted <- 0;
      t.insert_batches <- 0;
      t.rows_returned <- 0;
      t.rows_scanned <- 0;
      t.queries <- 0;
      t.flushes <- 0;
      t.flushed_bytes <- 0;
      t.merges <- 0;
      t.merged_bytes_in <- 0;
      t.merged_bytes_out <- 0;
      t.tablets_expired <- 0;
      t.flush_retries <- 0;
      t.tablets_quarantined <- 0;
      t.blocks_footer_answered <- 0;
      t.columns_decoded <- 0)

let read ?(cache = no_cache) (t : t) =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      {
        rows_inserted = t.rows_inserted;
        insert_batches = t.insert_batches;
        rows_returned = t.rows_returned;
        rows_scanned = t.rows_scanned;
        queries = t.queries;
        flushes = t.flushes;
        flushed_bytes = t.flushed_bytes;
        merges = t.merges;
        merged_bytes_in = t.merged_bytes_in;
        merged_bytes_out = t.merged_bytes_out;
        tablets_expired = t.tablets_expired;
        flush_retries = t.flush_retries;
        tablets_quarantined = t.tablets_quarantined;
        blocks_footer_answered = t.blocks_footer_answered;
        columns_decoded = t.columns_decoded;
        bytes_written = t.flushed_bytes + t.merged_bytes_out;
        cache;
      })

(* Field-wise sum of two snapshots. Used by the cluster router to
   aggregate per-shard table stats into one cluster-wide answer;
   [cache_resident_bytes] is not monotonic but summing footprints of
   disjoint caches is still the meaningful total. *)
let add (a : snapshot) (b : snapshot) =
  {
    rows_inserted = a.rows_inserted + b.rows_inserted;
    insert_batches = a.insert_batches + b.insert_batches;
    rows_returned = a.rows_returned + b.rows_returned;
    rows_scanned = a.rows_scanned + b.rows_scanned;
    queries = a.queries + b.queries;
    flushes = a.flushes + b.flushes;
    flushed_bytes = a.flushed_bytes + b.flushed_bytes;
    merges = a.merges + b.merges;
    merged_bytes_in = a.merged_bytes_in + b.merged_bytes_in;
    merged_bytes_out = a.merged_bytes_out + b.merged_bytes_out;
    tablets_expired = a.tablets_expired + b.tablets_expired;
    flush_retries = a.flush_retries + b.flush_retries;
    tablets_quarantined = a.tablets_quarantined + b.tablets_quarantined;
    blocks_footer_answered = a.blocks_footer_answered + b.blocks_footer_answered;
    columns_decoded = a.columns_decoded + b.columns_decoded;
    bytes_written = a.bytes_written + b.bytes_written;
    cache =
      {
        cache_hits = a.cache.cache_hits + b.cache.cache_hits;
        cache_misses = a.cache.cache_misses + b.cache.cache_misses;
        cache_evictions = a.cache.cache_evictions + b.cache.cache_evictions;
        cache_inserted_bytes =
          a.cache.cache_inserted_bytes + b.cache.cache_inserted_bytes;
        cache_resident_bytes =
          a.cache.cache_resident_bytes + b.cache.cache_resident_bytes;
      };
  }

(* Guard only the denominator: a query that scanned rows but returned
   none is pure waste and must show up as a large ratio, not hide
   behind a 1.0 placeholder. *)
let scan_ratio s =
  float_of_int s.rows_scanned /. float_of_int (max 1 s.rows_returned)

let write_amplification s =
  if s.flushed_bytes = 0 then 1.0
  else float_of_int s.bytes_written /. float_of_int s.flushed_bytes

let cache_hit_ratio s =
  let total = s.cache.cache_hits + s.cache.cache_misses in
  if total = 0 then 0.0
  else float_of_int s.cache.cache_hits /. float_of_int total

(* Counters only ever grow (asserted below), so any two snapshots are
   ordered: later reads dominate earlier ones field by field. *)
let bump v delta =
  assert (delta >= 0);
  v + delta

let note_insert (t : t) ~rows =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.rows_inserted <- bump t.rows_inserted rows;
      t.insert_batches <- bump t.insert_batches 1)

let note_query (t : t) ~scanned ~returned =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.queries <- bump t.queries 1;
      t.rows_scanned <- bump t.rows_scanned scanned;
      t.rows_returned <- bump t.rows_returned returned)

let note_flush (t : t) ~bytes =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.flushes <- bump t.flushes 1;
      t.flushed_bytes <- bump t.flushed_bytes bytes)

let note_merge (t : t) ~bytes_in ~bytes_out =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.merges <- bump t.merges 1;
      t.merged_bytes_in <- bump t.merged_bytes_in bytes_in;
      t.merged_bytes_out <- bump t.merged_bytes_out bytes_out)

let note_expired (t : t) ~tablets =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.tablets_expired <- bump t.tablets_expired tablets)

let note_flush_retry (t : t) =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.flush_retries <- bump t.flush_retries 1)

let note_quarantined (t : t) ~tablets =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.tablets_quarantined <- bump t.tablets_quarantined tablets)

let note_pushdown (t : t) ~footer_blocks ~columns =
  Lt_util.Mutexes.with_lock t.m (fun () ->
      t.blocks_footer_answered <- bump t.blocks_footer_answered footer_blocks;
      t.columns_decoded <- bump t.columns_decoded columns)

let pp ppf s =
  Format.fprintf ppf
    "@[<v>inserted %d rows in %d batches; %d queries returned %d rows \
     (scanned %d, ratio %.2f); %d flushes (%d B), %d merges (%d B in, %d B \
     out), write amp %.2f; %d tablets expired; %d flush retries, %d tablets \
     quarantined; pushdown: %d blocks footer-answered, %d columns decoded; \
     block cache %d hits / %d misses (%.0f%%), %d evictions, \
     %d B resident@]"
    s.rows_inserted s.insert_batches s.queries s.rows_returned s.rows_scanned
    (scan_ratio s) s.flushes s.flushed_bytes s.merges s.merged_bytes_in
    s.merged_bytes_out (write_amplification s) s.tablets_expired
    s.flush_retries s.tablets_quarantined s.blocks_footer_answered
    s.columns_decoded s.cache.cache_hits
    s.cache.cache_misses
    (cache_hit_ratio s *. 100.0)
    s.cache.cache_evictions s.cache.cache_resident_bytes
