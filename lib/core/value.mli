(** Column types and cell values.

    LittleTable supports "32-bit and 64-bit integers, double precision
    floating point numbers, timestamps, variable length strings, and byte
    arrays", and deliberately has no nulls (§3.5). Timestamps are [int64]
    microseconds since the Unix epoch. *)

(** The declared type of a column. *)
type ctype =
  | T_int32
  | T_int64
  | T_double
  | T_timestamp
  | T_string
  | T_blob

type t =
  | Int32 of int32
  | Int64 of int64
  | Double of float
  | Timestamp of int64  (** microseconds since the epoch *)
  | String of string
  | Blob of string

val type_of : t -> ctype

val type_name : ctype -> string

val type_of_name : string -> ctype option

(** The conventional default for a type: zero / the epoch / empty. *)
val zero : ctype -> t

(** [matches ctype v] holds when [v] inhabits [ctype]. *)
val matches : ctype -> t -> bool

(** [widen ~from ~into v]: the only supported type promotion is
    [T_int32 -> T_int64] (§3.5 allows increasing the precision of 32-bit
    integer columns). Returns [None] for any other changed type. *)
val widen : from:ctype -> into:ctype -> t -> t option

(** Total order within a type; comparing values of different types is a
    programming error. @raise Invalid_argument on a type mismatch. *)
val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Serialization} (compact, non-order-preserving; see {!Key_codec}
    for the order-preserving key form) *)

val encode : Buffer.t -> t -> unit

(** Exact byte length {!encode} would produce, allocation-free. *)
val encoded_size : t -> int

val decode : ctype -> Lt_util.Binio.cursor -> t
