(** Row serialization for storage.

    A stored row is split into its encoded primary key (see {!Key_codec})
    and a compact value part holding the non-key columns in schema order;
    nothing is stored twice. Decoding recovers the full row in schema
    column order, translating forward when the tablet was written under an
    older schema version.

    The [_into] / [_slice] forms are the batched hot path: encoders append
    straight into a caller-owned buffer (one block payload, one wire
    frame) and decoders read a window of a larger string, so neither side
    allocates a per-row intermediate value string. *)

(** Non-key columns of a validated row, in schema order. *)
val encode_value : Schema.t -> Value.t array -> string

(** Append the value encoding of [row] to [buf] — {!encode_value} without
    the intermediate string. *)
val encode_value_into : Buffer.t -> Schema.t -> Value.t array -> unit

(** [decode schema ~key ~value] rebuilds the full row. *)
val decode : Schema.t -> key:string -> value:string -> Value.t array

(** [decode_slice schema ~key ~data ~off ~len] is {!decode} over the
    value encoding at [data.[off .. off+len-1]], without copying the
    slice out. *)
val decode_slice :
  Schema.t -> key:string -> data:string -> off:int -> len:int ->
  Value.t array

(** [decode_translated ~from ~into ~key ~value] decodes a row written
    under schema [from] and translates it to [into] (§3.5: cells are
    widened or filled with defaults; on-disk tablets are never
    rewritten). *)
val decode_translated :
  from:Schema.t -> into:Schema.t -> key:string -> value:string -> Value.t array

(** Slice form of {!decode_translated}. *)
val decode_translated_slice :
  from:Schema.t -> into:Schema.t -> key:string -> data:string -> off:int ->
  len:int -> Value.t array

(** Exact byte length of {!encode_value}'s output, allocation-free. *)
val value_size : Schema.t -> Value.t array -> int

(** Exact stored size of a row in bytes (key + value encodings),
    computed without running either encoder. *)
val stored_size : Schema.t -> Value.t array -> int
