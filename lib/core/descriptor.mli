(** Table descriptor files.

    "LittleTable caches the range of timestamps each tablet contains ...
    and it writes the list of on-disk tablets and their timespans to a
    table descriptor file after every change. Once written, LittleTable
    atomically renames this file to replace the previous version."
    (§3.2.) The descriptor is the root of a table's durable state: a
    tablet exists exactly when the current descriptor lists it. Multi-
    tablet flushes (§3.4.3) become atomic by writing all new tablet files
    first and then publishing one new descriptor.

    The file also records the current schema and TTL (§3.5) and the next
    tablet id. It carries a CRC and is written to a temporary name,
    fsynced, and renamed over the old version. *)

type tablet_meta = {
  id : int;
  file : string;  (** file name within the table directory *)
  min_ts : int64;
  max_ts : int64;
  min_key : string;
  max_key : string;
  row_count : int;
  size : int;  (** bytes on disk *)
  columnar : bool;
      (** column-major data blocks (merge-time rewrite past
          [Config.columnar_age]); merges use this to find tablets whose
          layout has gone stale *)
}

type t = {
  schema : Schema.t;
  ttl : int64 option;  (** microseconds; [None] = keep forever *)
  next_id : int;  (** ids [>= next_id] are unused *)
  tablets : tablet_meta list;  (** sorted by [min_ts], then id *)
}

val file_name : string
(** ["DESCRIPTOR"] *)

(** Canonical on-disk tablet file name for an id, e.g. ["000042.tab"]. *)
val tablet_file : int -> string

(** Sort tablets into canonical order (by timespan lower bound, ties by
    id, i.e. flush order). *)
val normalize : t -> t

val save : Lt_vfs.Vfs.t -> dir:string -> t -> unit

(** @raise Lt_util.Binio.Corrupt on a damaged or missing descriptor. *)
val load : Lt_vfs.Vfs.t -> dir:string -> t

val exists : Lt_vfs.Vfs.t -> dir:string -> bool
