open Lt_util

type source = unit -> (string * Value.t array) option

type head = { key : string; row : Value.t array; prio : int; src : source }

let merge ~asc sources =
  let cmp a b =
    let c = String.compare a.key b.key in
    let c = if asc then c else -c in
    (* Equal keys: higher priority (newer tablet) first. *)
    if c <> 0 then c else Int.compare b.prio a.prio
  in
  let heap = Heap.create ~cmp in
  List.iter
    (fun (prio, src) ->
      match src () with
      | None -> ()
      | Some (key, row) -> Heap.add heap { key; row; prio; src })
    sources;
  let last_key = ref None in
  let rec next () =
    match Heap.peek heap with
    | None -> None
    | Some top ->
        (match top.src () with
        | None -> ignore (Heap.pop heap)
        | Some (key, row) ->
            Heap.replace_min heap { top with key; row });
        if !last_key = Some top.key then next () (* shadowed duplicate *)
        else begin
          last_key := Some top.key;
          Some (top.key, top.row)
        end
  in
  next

let filter_ts ~scanned ?ts_min ?ts_max src =
  let rec next () =
    match src () with
    | None -> None
    | Some (key, row) ->
        incr scanned;
        let ts = Key_codec.ts_of_key key in
        let ok_lo = match ts_min with None -> true | Some b -> ts >= b in
        let ok_hi = match ts_max with None -> true | Some b -> ts <= b in
        if ok_lo && ok_hi then Some (key, row) else next ()
  in
  next

let take n src =
  let left = ref n in
  fun () ->
    if !left <= 0 then None
    else begin
      match src () with
      | None ->
          left := 0;
          None
      | some ->
          decr left;
          some
    end

let fold f init src =
  let rec go acc = match src () with None -> acc | Some kv -> go (f acc kv) in
  go init

let to_list src =
  let rec go acc =
    match src () with None -> List.rev acc | Some kv -> go (kv :: acc)
  in
  go []

let rows src = List.map snd (to_list src)
