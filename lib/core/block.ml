open Lt_util

type entry = { key : string; value : string }

(* The payload is built incrementally in one buffer so callers can encode
   row values straight into it ({!add_enc}) instead of materializing a
   per-row value string first. *)
type builder = {
  payload : Buffer.t;
  mutable offsets : int list;  (** reversed *)
  mutable count : int;
  mutable first : string option;
  mutable last : string option;
}

let builder () =
  { payload = Buffer.create 4096;
    offsets = [];
    count = 0;
    first = None;
    last = None }

let add_enc b ~key ~value_size ~encode =
  (match b.last with
  | Some last when String.compare key last <= 0 ->
      invalid_arg "Block.add: keys must be strictly ascending"
  | _ -> ());
  b.offsets <- Buffer.length b.payload :: b.offsets;
  b.count <- b.count + 1;
  Binio.put_string b.payload key;
  Binio.put_varint b.payload value_size;
  let before = Buffer.length b.payload in
  encode b.payload;
  if Buffer.length b.payload - before <> value_size then
    invalid_arg "Block.add_enc: encoder wrote a different size than declared";
  if b.first = None then b.first <- Some key;
  b.last <- Some key

let add b ~key ~value =
  add_enc b ~key ~value_size:(String.length value) ~encode:(fun buf ->
      Buffer.add_string buf value)

let entry_count b = b.count

let raw_size b = Buffer.length b.payload + (4 * b.count) + 5

let last_key b = b.last

let first_key b = b.first

let finish b =
  let out = Buffer.create (raw_size b) in
  Binio.put_varint out b.count;
  List.iter (fun off -> Binio.put_u32 out off) (List.rev b.offsets);
  Buffer.add_buffer out b.payload;
  Buffer.clear b.payload;
  b.offsets <- [];
  b.count <- 0;
  b.first <- None;
  b.last <- None;
  Buffer.contents out

type t = { data : string; offsets : int array; payload_start : int }

let decode data =
  let cur = Binio.cursor data in
  let count = Binio.get_varint cur in
  if count < 0 || count > String.length data then
    raise (Binio.Corrupt "block: implausible row count");
  let offsets = Array.init count (fun _ -> Binio.get_u32 cur) in
  { data; offsets; payload_start = cur.Binio.pos }

let count t = Array.length t.offsets

let entry t i =
  let cur = Binio.cursor ~pos:(t.payload_start + t.offsets.(i)) t.data in
  let key = Binio.get_string cur in
  let value = Binio.get_string cur in
  { key; value }

let key t i =
  let cur = Binio.cursor ~pos:(t.payload_start + t.offsets.(i)) t.data in
  Binio.get_string cur

let data t = t.data

let value_span t i =
  let cur = Binio.cursor ~pos:(t.payload_start + t.offsets.(i)) t.data in
  let key_len = Binio.get_varint cur in
  if Binio.remaining cur < key_len then
    raise (Binio.Corrupt "block: truncated key");
  cur.Binio.pos <- cur.Binio.pos + key_len;
  let len = Binio.get_varint cur in
  if Binio.remaining cur < len then
    raise (Binio.Corrupt "block: truncated value");
  (cur.Binio.pos, len)

let search_geq t k =
  let lo = ref 0 and hi = ref (count t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (key t mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo
