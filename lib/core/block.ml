open Lt_util

type entry = { key : string; value : string }

type layout = Row_major | Col_major

(* The payload is built incrementally in one buffer so callers can encode
   row values straight into it ({!add_enc}) instead of materializing a
   per-row value string first. *)
type builder = {
  payload : Buffer.t;
  mutable offsets : int list;  (** reversed *)
  mutable count : int;
  mutable first : string option;
  mutable last : string option;
}

let builder () =
  { payload = Buffer.create 4096;
    offsets = [];
    count = 0;
    first = None;
    last = None }

let add_enc b ~key ~value_size ~encode =
  (match b.last with
  | Some last when String.compare key last <= 0 ->
      invalid_arg "Block.add: keys must be strictly ascending"
  | _ -> ());
  b.offsets <- Buffer.length b.payload :: b.offsets;
  b.count <- b.count + 1;
  Binio.put_string b.payload key;
  Binio.put_varint b.payload value_size;
  let before = Buffer.length b.payload in
  encode b.payload;
  if Buffer.length b.payload - before <> value_size then
    invalid_arg "Block.add_enc: encoder wrote a different size than declared";
  if b.first = None then b.first <- Some key;
  b.last <- Some key

let add b ~key ~value =
  add_enc b ~key ~value_size:(String.length value) ~encode:(fun buf ->
      Buffer.add_string buf value)

let entry_count b = b.count

let raw_size b = Buffer.length b.payload + (4 * b.count) + 5

let last_key b = b.last

let first_key b = b.first

let finish b =
  let out = Buffer.create (raw_size b) in
  Binio.put_varint out b.count;
  List.iter (fun off -> Binio.put_u32 out off) (List.rev b.offsets);
  Buffer.add_buffer out b.payload;
  Buffer.clear b.payload;
  b.offsets <- [];
  b.count <- 0;
  b.first <- None;
  b.last <- None;
  Buffer.contents out

(* {1 Columnar building} *)

let col_magic = 0xC7

let col_version = 1

type col_builder = {
  cb_schema : Schema.t;
  mutable cb_rows : (string * Value.t array) list;  (** reversed *)
  mutable cb_count : int;
  mutable cb_bytes : int;
  mutable cb_first : string option;
  mutable cb_last : string option;
}

let col_builder schema =
  { cb_schema = schema;
    cb_rows = [];
    cb_count = 0;
    cb_bytes = 0;
    cb_first = None;
    cb_last = None }

let col_add b ~key row =
  (match b.cb_last with
  | Some last when String.compare key last <= 0 ->
      invalid_arg "Block.col_add: keys must be strictly ascending"
  | _ -> ());
  b.cb_rows <- (key, row) :: b.cb_rows;
  b.cb_count <- b.cb_count + 1;
  b.cb_bytes <-
    b.cb_bytes + String.length key + 4
    + Array.fold_left (fun a v -> a + Value.encoded_size v) 0 row;
  if b.cb_first = None then b.cb_first <- Some key;
  b.cb_last <- Some key

let col_count b = b.cb_count

let col_raw_size b = b.cb_bytes + 16

let col_first_key b = b.cb_first

let col_last_key b = b.cb_last

(* A section is one independently compressed byte run:
   {v u8 codec | varint comp_len | varint raw_len | payload v}
   with codec 1 = LZ (used only when it actually shrinks), 0 = raw. *)
let put_section out raw =
  let comp = Lt_lz.Lz.compress raw in
  if String.length comp < String.length raw then begin
    Binio.put_u8 out 1;
    Binio.put_varint out (String.length comp);
    Binio.put_varint out (String.length raw);
    Buffer.add_string out comp
  end
  else begin
    Binio.put_u8 out 0;
    Binio.put_varint out (String.length raw);
    Binio.put_varint out (String.length raw);
    Buffer.add_string out raw
  end

let col_finish b =
  let n = b.cb_count in
  let pairs = Array.of_list (List.rev b.cb_rows) in
  let rows = Array.map snd pairs in
  let stats = Agg.stats_of_rows b.cb_schema rows ~count:n in
  let columns = Schema.columns b.cb_schema in
  let out = Buffer.create (b.cb_bytes + 64) in
  Binio.put_u8 out col_magic;
  Binio.put_u8 out col_version;
  Binio.put_varint out n;
  Binio.put_varint out (Array.length columns);
  let keysec = Buffer.create ((b.cb_bytes / 2) + 16) in
  Array.iter (fun (k, _) -> Binio.put_string keysec k) pairs;
  put_section out (Buffer.contents keysec);
  Array.iteri
    (fun c col ->
      if not (Schema.is_pkey b.cb_schema c) then begin
        let default = col.Schema.default in
        let stored = Array.map (fun r -> not (Value.equal r.(c) default)) rows in
        let n_stored =
          Array.fold_left (fun a s -> if s then a + 1 else a) 0 stored
        in
        let sec = Buffer.create 256 in
        if n_stored = n then begin
          (* Dense: every value differs from the default, skip the bitmap. *)
          Binio.put_u8 out 0;
          Array.iter (fun r -> Value.encode sec r.(c)) rows
        end
        else begin
          (* Sparse: bitmap bit i set = row i's value is stored explicitly;
             clear = the row holds the stored schema's column default. *)
          Binio.put_u8 out 1;
          let bm = Bytes.make ((n + 7) / 8) '\000' in
          Array.iteri
            (fun i s ->
              if s then
                Bytes.set bm (i / 8)
                  (Char.chr
                     (Char.code (Bytes.get bm (i / 8)) lor (1 lsl (i mod 8)))))
            stored;
          Buffer.add_bytes out bm;
          Array.iteri (fun i s -> if s then Value.encode sec rows.(i).(c)) stored
        end;
        put_section out (Buffer.contents sec)
      end)
    columns;
  (b.cb_rows <- [];
   b.cb_count <- 0;
   b.cb_bytes <- 0;
   b.cb_first <- None;
   b.cb_last <- None)
  [@lint.allow
    "domain-race: a [col_builder] is confined to the one tablet writer \
     that created it — merges fill and finish it under [maint_lock], a \
     straddling delete_prefix rewrite under its own writer lock; the \
     builder never escapes to another domain, the lock merely comes \
     with the caller"];
  (Buffer.contents out, stats)

(* {1 Reading} *)

type row_repr = { offsets : int array; payload_start : int }

type col_desc = {
  cd_bitmap : int option;  (** offset of the presence bitmap in [data] *)
  cd_codec : int;
  cd_off : int;
  cd_comp_len : int;
  cd_raw_len : int;
}

type col_repr = {
  c_rows : int;
  c_keys : string array;
  c_cols : col_desc option array;  (** [None] = primary-key column *)
}

type repr = Row_r of row_repr | Col_r of col_repr

type t = { data : string; repr : repr }

let decode data =
  let cur = Binio.cursor data in
  let count = Binio.get_varint cur in
  if count < 0 || count > String.length data then
    raise (Binio.Corrupt "block: implausible row count");
  let offsets = Array.init count (fun _ -> Binio.get_u32 cur) in
  { data; repr = Row_r { offsets; payload_start = cur.Binio.pos } }

let section_bytes data d =
  if d.cd_off + d.cd_comp_len > String.length data then
    raise (Binio.Corrupt "block: truncated column section");
  let comp = String.sub data d.cd_off d.cd_comp_len in
  if d.cd_codec = 1 then (
    try Lt_lz.Lz.decompress ~raw_len:d.cd_raw_len comp
    with Lt_lz.Lz.Corrupt m -> raise (Binio.Corrupt ("block: " ^ m)))
  else if d.cd_comp_len <> d.cd_raw_len then
    raise (Binio.Corrupt "block: section length mismatch")
  else comp

let get_section_desc cur ~bitmap =
  let codec = Binio.get_u8 cur in
  if codec <> 0 && codec <> 1 then
    raise (Binio.Corrupt "block: unknown section codec");
  let comp_len = Binio.get_varint cur in
  let raw_len = Binio.get_varint cur in
  if Binio.remaining cur < comp_len then
    raise (Binio.Corrupt "block: truncated column section");
  let off = cur.Binio.pos in
  Binio.skip cur comp_len;
  { cd_bitmap = bitmap; cd_codec = codec; cd_off = off; cd_comp_len = comp_len;
    cd_raw_len = raw_len }

let decode_columnar schema data =
  let cur = Binio.cursor data in
  if Binio.get_u8 cur <> col_magic then
    raise (Binio.Corrupt "block: bad columnar magic");
  if Binio.get_u8 cur <> col_version then
    raise (Binio.Corrupt "block: unknown columnar version");
  let rows = Binio.get_varint cur in
  if rows < 0 || rows > String.length data then
    raise (Binio.Corrupt "block: implausible row count");
  let ncols = Binio.get_varint cur in
  if ncols <> Schema.column_count schema then
    raise (Binio.Corrupt "block: column count does not match footer schema");
  let keys_desc = get_section_desc cur ~bitmap:None in
  let keysec = section_bytes data keys_desc in
  let kcur = Binio.cursor keysec in
  let keys = Array.init rows (fun _ -> Binio.get_string kcur) in
  Binio.expect_end kcur;
  let cols =
    Array.init ncols (fun c ->
        if Schema.is_pkey schema c then None
        else begin
          let presence = Binio.get_u8 cur in
          let bitmap =
            match presence with
            | 0 -> None
            | 1 ->
                let len = (rows + 7) / 8 in
                if Binio.remaining cur < len then
                  raise (Binio.Corrupt "block: truncated presence bitmap");
                let off = cur.Binio.pos in
                Binio.skip cur len;
                Some off
            | _ -> raise (Binio.Corrupt "block: unknown presence tag")
          in
          Some (get_section_desc cur ~bitmap)
        end)
  in
  Binio.expect_end cur;
  { data; repr = Col_r { c_rows = rows; c_keys = keys; c_cols = cols } }

let layout t = match t.repr with Row_r _ -> Row_major | Col_r _ -> Col_major

let count t =
  match t.repr with
  | Row_r r -> Array.length r.offsets
  | Col_r c -> c.c_rows

let row_repr t =
  match t.repr with
  | Row_r r -> r
  | Col_r _ -> invalid_arg "Block: columnar block has no row payload"

let col_repr t =
  match t.repr with
  | Col_r c -> c
  | Row_r _ -> invalid_arg "Block: not a columnar block"

let entry t i =
  let r = row_repr t in
  let cur = Binio.cursor ~pos:(r.payload_start + r.offsets.(i)) t.data in
  let key = Binio.get_string cur in
  let value = Binio.get_string cur in
  { key; value }

let key t i =
  match t.repr with
  | Row_r r ->
      let cur = Binio.cursor ~pos:(r.payload_start + r.offsets.(i)) t.data in
      Binio.get_string cur
  | Col_r c -> c.c_keys.(i)

let data t = t.data

let value_span t i =
  let r = row_repr t in
  let cur = Binio.cursor ~pos:(r.payload_start + r.offsets.(i)) t.data in
  let key_len = Binio.get_varint cur in
  if Binio.remaining cur < key_len then
    raise (Binio.Corrupt "block: truncated key");
  cur.Binio.pos <- cur.Binio.pos + key_len;
  let len = Binio.get_varint cur in
  if Binio.remaining cur < len then
    raise (Binio.Corrupt "block: truncated value");
  (cur.Binio.pos, len)

let search_geq t k =
  let lo = ref 0 and hi = ref (count t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (key t mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let decode_column_into data d ~rows ~ctype ~default =
  let raw = section_bytes data d in
  let cur = Binio.cursor raw in
  let out = Array.make rows default in
  (match d.cd_bitmap with
  | None -> for i = 0 to rows - 1 do out.(i) <- Value.decode ctype cur done
  | Some boff ->
      for i = 0 to rows - 1 do
        if Char.code data.[boff + (i / 8)] land (1 lsl (i mod 8)) <> 0 then
          out.(i) <- Value.decode ctype cur
      done);
  Binio.expect_end cur;
  out

let read_column t schema c =
  let r = col_repr t in
  let columns = Schema.columns schema in
  if Schema.is_pkey schema c then begin
    let pk = Schema.pkey schema in
    let j = ref 0 in
    Array.iteri (fun k idx -> if idx = c then j := k) pk;
    Array.map (fun key -> (Key_codec.decode_key schema key).(!j)) r.c_keys
  end
  else
    match r.c_cols.(c) with
    | Some d ->
        decode_column_into t.data d ~rows:r.c_rows
          ~ctype:columns.(c).Schema.ctype ~default:columns.(c).Schema.default
    | None -> assert false

let columnar_rows t schema ?cols () =
  let r = col_repr t in
  let columns = Schema.columns schema in
  let n = r.c_rows in
  let out =
    Array.init n (fun _ -> Array.map (fun c -> c.Schema.default) columns)
  in
  (* Primary-key columns are never stored as sections; every row's key
     values come from one decode of its already materialized key. *)
  let pk = Schema.pkey schema in
  Array.iteri
    (fun i key ->
      let kv = Key_codec.decode_key schema key in
      Array.iteri (fun j idx -> out.(i).(idx) <- kv.(j)) pk)
    r.c_keys;
  let wanted c = match cols with None -> true | Some l -> List.mem c l in
  let decoded = ref 0 in
  Array.iteri
    (fun c desc ->
      match desc with
      | Some d when wanted c ->
          incr decoded;
          let vals =
            decode_column_into t.data d ~rows:n
              ~ctype:columns.(c).Schema.ctype
              ~default:columns.(c).Schema.default
          in
          Array.iteri (fun i v -> out.(i).(c) <- v) vals
      | Some _ | None -> ())
    r.c_cols;
  (out, !decoded)
