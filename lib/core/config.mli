(** Engine tuning knobs, with the paper's defaults. *)

type t = {
  block_size : int;
      (** on-disk block target, bytes — 64 kB (§3.2) *)
  flush_size : int;
      (** freeze a memtable at this many bytes — 16 MB, "large enough to
          sustain roughly 95% of the disk's peak write rate" (§3.3) *)
  flush_age : int64;
      (** freeze a memtable this long after its first row, microseconds —
          10 minutes, bounding crash data loss (§3.4.1) *)
  max_tablet_size : int;
      (** merged tablets never exceed this — 128 MB (§5.1.3) *)
  merge_delay : int64;
      (** leave a tablet alone this long after writing it, so merges see
          as many inputs as possible — 90 s (§5.1.3) *)
  rollover_spread : float;
      (** when a tablet's data ages into a larger time period, delay its
          merging by a pseudorandom fraction of that period times this
          factor, spreading rollover merge load (§3.4.2); 0 disables *)
  bloom_bits_per_key : int;
      (** per-tablet Bloom filters (§3.4.5) — 10 bits/row; 0 disables *)
  flush_backlog : int;
      (** force a synchronous flush when this many frozen memtables are
          waiting; 1 = flush immediately on freeze (Figure 3 uses 100) *)
  server_row_limit : int;
      (** the server's own per-query row cap behind the more-available
          flag (§3.5) *)
  enforce_unique : bool;
      (** primary-key uniqueness checks on insert (§3.4.4) *)
  cache_bytes : int;
      (** process-wide block-cache capacity, bytes — the in-process
          stand-in for the OS page cache the paper relies on (§3.2,
          §3.5); 64 MB default, 0 disables *)
  obs_enabled : bool;
      (** collect latency histograms and slow-op spans ([Lt_obs]);
          disabling reduces every instrumentation site to a boolean
          load *)
  slow_op_micros : int64;
      (** operations at least this slow (microseconds) are kept in the
          slow-op ring's [.slow] view and logged through ["lt.slowop"]
          — 100 ms default *)
  trace_capacity : int;
      (** spans retained in the slow-op/trace ring — 1024 default (a
          router reassembling fan-outs needs deeper history than the
          original 256) *)
  query_domains : int;
      (** worker domains for parallel tablet scans ([Lt_exec]); queries
          touching more than one tablet fan out over a pool of this
          size and are k-way merged back into primary-key order, with
          results byte-identical to a sequential scan. 0 forces the
          sequential path; default [max 1 (ncpu - 2)] *)
  columnar_age : int64;
      (** merges rewrite a tablet column-major once its newest row is at
          least this old (microseconds), so fresh timespans stay
          row-major for point lookups while aged timespans serve
          aggregation from per-column runs and footer stats (the HTAP
          layout split of real-time LSM-trees). [0] makes every merge
          output columnar; [Int64.max_int] (the default) disables the
          columnar layout entirely, so it is an opt-in knob *)
}

val default : t

(** [default] with selective overrides. *)
val make :
  ?block_size:int ->
  ?flush_size:int ->
  ?flush_age:int64 ->
  ?max_tablet_size:int ->
  ?merge_delay:int64 ->
  ?rollover_spread:float ->
  ?bloom_bits_per_key:int ->
  ?flush_backlog:int ->
  ?server_row_limit:int ->
  ?enforce_unique:bool ->
  ?cache_bytes:int ->
  ?obs_enabled:bool ->
  ?slow_op_micros:int64 ->
  ?trace_capacity:int ->
  ?query_domains:int ->
  ?columnar_age:int64 ->
  unit ->
  t
