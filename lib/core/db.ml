open Lt_util
module Vfs = Lt_vfs.Vfs

type t = {
  config : Config.t;
  clock : Clock.t;
  vfs : Vfs.t;
  dir : string;
  tables : (string, Table.t) Hashtbl.t;
  cache : Block.t Lt_cache.Block_cache.t option;
  mutex : Mutex.t;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let table_dir t name = Filename.concat t.dir name

let open_ ?(config = Config.default) ?(clock = Clock.system)
    ?(vfs = Vfs.real ()) ~dir () =
  Vfs.mkdir_p vfs dir;
  let cache =
    if config.Config.cache_bytes > 0 then
      Some (Lt_cache.Block_cache.create ~capacity:config.Config.cache_bytes ())
    else None
  in
  let t =
    {
      config;
      clock;
      vfs;
      dir;
      tables = Hashtbl.create 16;
      cache;
      mutex = Mutex.create ();
    }
  in
  let entries = try Vfs.readdir vfs dir with Vfs.Io_error _ -> [] in
  List.iter
    (fun name ->
      let tdir = table_dir t name in
      if Descriptor.exists vfs ~dir:tdir then
        Hashtbl.replace t.tables name
          (Table.open_ ?cache vfs ~clock ~config ~dir:tdir ~name))
    entries;
  t

let config t = t.config

let block_cache t = t.cache

let clock t = t.clock

let vfs t = t.vfs

let dir t = t.dir

let validate_name name =
  if name = "" || String.contains name '/' || name = Descriptor.file_name then
    invalid_arg (Printf.sprintf "Db: bad table name %S" name)

let create_table t name schema ~ttl =
  validate_name name;
  locked t (fun () ->
      if Hashtbl.mem t.tables name then
        invalid_arg (Printf.sprintf "Db: table %S already exists" name);
      let table =
        Table.create ?cache:t.cache t.vfs ~clock:t.clock ~config:t.config
          ~dir:(table_dir t name) ~name schema ~ttl
      in
      Hashtbl.replace t.tables name table;
      table)

let find_table t name = locked t (fun () -> Hashtbl.find_opt t.tables name)

let table t name =
  match find_table t name with Some tbl -> tbl | None -> raise Not_found

let table_names t =
  locked t (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tables []))

let drop_table t name =
  let tbl =
    locked t (fun () ->
        match Hashtbl.find_opt t.tables name with
        | None -> raise Not_found
        | Some tbl ->
            Hashtbl.remove t.tables name;
            tbl)
  in
  Table.close tbl;
  let tdir = table_dir t name in
  List.iter
    (fun entry ->
      let path = Filename.concat tdir entry in
      try Vfs.delete t.vfs path with Vfs.Io_error _ -> ())
    (try Vfs.readdir t.vfs tdir with Vfs.Io_error _ -> [])

let all_tables t =
  locked t (fun () -> Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables [])

let maintenance t = List.iter Table.maintenance (all_tables t)

let flush_all t = List.iter Table.flush_all (all_tables t)

let close t = List.iter Table.close (all_tables t)
