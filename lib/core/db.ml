open Lt_util
module Vfs = Lt_vfs.Vfs
module Obs = Lt_obs.Obs
module Metrics = Lt_obs.Metrics

type t = {
  config : Config.t;
  clock : Clock.t;
  vfs : Vfs.t;
  dir : string;
  tables : (string, Table.t) Hashtbl.t;
  cache : Block.t Lt_cache.Block_cache.t option;
  obs : Obs.t;
  pool : Lt_exec.Pool.t option;
      (** shared scan pool, sized once from [Config.query_domains] *)
  mutex : Mutex.t;
}

let table_dir t name = Filename.concat t.dir name

(* Export every table's Stats counters (plus structural gauges) into
   the Prometheus exposition at render time, so the existing counter
   machinery is the single source of truth and never double-counts. *)
let stats_samples t =
  let sample name help kind labels v =
    { Metrics.s_name = name; s_help = help; s_kind = kind; s_labels = labels;
      s_value = float_of_int v }
  in
  let tables =
    Mutexes.with_lock t.mutex (fun () ->
        Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables [])
  in
  let tables =
    List.sort (fun a b -> String.compare (Table.name a) (Table.name b)) tables
  in
  let per_table tbl =
    let labels = [ ("table", Table.name tbl) ] in
    let s = Table.stats tbl in
    [ sample "lt_rows_inserted_total" "Rows inserted." `Counter labels
        s.Stats.rows_inserted;
      sample "lt_insert_batches_total" "Insert batches." `Counter labels
        s.Stats.insert_batches;
      sample "lt_queries_total" "Queries (including latest-row searches)."
        `Counter labels s.Stats.queries;
      sample "lt_rows_returned_total" "Rows returned by queries." `Counter
        labels s.Stats.rows_returned;
      sample "lt_rows_scanned_total" "Rows scanned by queries." `Counter
        labels s.Stats.rows_scanned;
      sample "lt_flushes_total" "Memtable flushes." `Counter labels
        s.Stats.flushes;
      sample "lt_flushed_bytes_total" "Bytes written by flushes." `Counter
        labels s.Stats.flushed_bytes;
      sample "lt_merges_total" "Tablet merges." `Counter labels s.Stats.merges;
      sample "lt_merged_bytes_out_total" "Bytes written by merges." `Counter
        labels s.Stats.merged_bytes_out;
      sample "lt_tablets_expired_total" "Tablets reclaimed by TTL expiry."
        `Counter labels s.Stats.tablets_expired;
      sample "lt_flush_retries_total"
        "Flush attempts requeued after a transient I/O error." `Counter labels
        s.Stats.flush_retries;
      sample "lt_tablets_quarantined_total"
        "Corrupt tablets quarantined at table open." `Counter labels
        s.Stats.tablets_quarantined;
      sample "lt_blocks_footer_answered_total"
        "Columnar blocks whose aggregates were answered from footer stats."
        `Counter labels s.Stats.blocks_footer_answered;
      sample "lt_columns_decoded_total"
        "Columnar column sections decompressed by scans." `Counter labels
        s.Stats.columns_decoded;
      sample "lt_tablets" "On-disk tablets." `Gauge labels
        (Table.tablet_count tbl);
      sample "lt_memtables" "In-memory tablets (filling + frozen)." `Gauge
        labels (Table.memtable_count tbl);
      sample "lt_disk_bytes" "Total bytes of on-disk tablets." `Gauge labels
        (Table.disk_size tbl) ]
  in
  let cache_samples =
    match t.cache with
    | None -> []
    | Some c ->
        let k = Lt_cache.Block_cache.counters c in
        let open Lt_cache.Block_cache in
        [ sample "lt_cache_hits_total" "Block cache hits." `Counter [] k.hits;
          sample "lt_cache_misses_total" "Block cache misses." `Counter []
            k.misses;
          sample "lt_cache_evictions_total" "Block cache evictions." `Counter
            [] k.evictions;
          sample "lt_cache_resident_bytes" "Block cache resident bytes."
            `Gauge [] k.resident_bytes ]
  in
  List.concat_map per_table tables @ cache_samples

let open_ ?(config = Config.default) ?(clock = Clock.system)
    ?(vfs = Vfs.real ()) ~dir () =
  Vfs.mkdir_p vfs dir;
  let cache =
    if config.Config.cache_bytes > 0 then
      Some (Lt_cache.Block_cache.create ~capacity:config.Config.cache_bytes ())
    else None
  in
  let obs =
    Obs.create ~enabled:config.Config.obs_enabled
      ~trace_capacity:config.Config.trace_capacity
      ~slow_op_micros:config.Config.slow_op_micros ~clock ()
  in
  (* [Pool.shared] keys process-wide pools by size, so opening many
     databases with the same config (test suites do) reuses one set of
     worker domains instead of spawning per-[Db]. *)
  let pool =
    if config.Config.query_domains > 0 then
      Some (Lt_exec.Pool.shared ~domains:config.Config.query_domains)
    else None
  in
  let t =
    {
      config;
      clock;
      vfs;
      dir;
      tables = Hashtbl.create 16;
      cache;
      obs;
      pool;
      mutex = Mutex.create ();
    }
  in
  let entries = try Vfs.readdir vfs dir with Vfs.Io_error _ -> [] in
  List.iter
    (fun name ->
      let tdir = table_dir t name in
      if Descriptor.exists vfs ~dir:tdir then begin
        let tbl = Table.open_ ?cache ~obs ?pool vfs ~clock ~config ~dir:tdir ~name in
        Mutexes.with_lock t.mutex (fun () -> Hashtbl.replace t.tables name tbl)
      end)
    entries;
  (* Register only once the table map is populated: the registry is
     process-wide, so a scrape from another thread may run the collector
     as soon as it is visible there. *)
  Metrics.register_collector (Obs.registry obs) (fun () -> stats_samples t);
  t

let config t = t.config

let obs t = t.obs

let scan_pool t = t.pool

let block_cache t = t.cache

let clock t = t.clock

let vfs t = t.vfs

let dir t = t.dir

let validate_name name =
  if name = "" || String.contains name '/' || name = Descriptor.file_name then
    invalid_arg (Printf.sprintf "Db: bad table name %S" name)

let create_table t name schema ~ttl =
  validate_name name;
  Mutexes.with_lock t.mutex (fun () ->
      if Hashtbl.mem t.tables name then
        invalid_arg (Printf.sprintf "Db: table %S already exists" name);
      let table =
        Table.create ?cache:t.cache ~obs:t.obs ?pool:t.pool t.vfs
          ~clock:t.clock ~config:t.config ~dir:(table_dir t name) ~name schema
          ~ttl
      in
      Hashtbl.replace t.tables name table;
      table)

let find_table t name = Mutexes.with_lock t.mutex (fun () -> Hashtbl.find_opt t.tables name)

let table t name =
  match find_table t name with Some tbl -> tbl | None -> raise Not_found

let table_names t =
  Mutexes.with_lock t.mutex (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tables []))

let drop_table t name =
  let tbl =
    Mutexes.with_lock t.mutex (fun () ->
        match Hashtbl.find_opt t.tables name with
        | None -> raise Not_found
        | Some tbl ->
            Hashtbl.remove t.tables name;
            tbl)
  in
  Table.close tbl;
  let tdir = table_dir t name in
  List.iter
    (fun entry ->
      let path = Filename.concat tdir entry in
      try Vfs.delete t.vfs path with Vfs.Io_error _ -> ())
    (try Vfs.readdir t.vfs tdir with Vfs.Io_error _ -> [])

let all_tables t =
  Mutexes.with_lock t.mutex (fun () -> Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables [])

let maintenance t = List.iter Table.maintenance (all_tables t)

let flush_all t = List.iter Table.flush_all (all_tables t)

let close t = List.iter Table.close (all_tables t)
