(** On-disk tablets.

    File layout (§3.2, §3.5):

    {v
      block frame *           rows sorted by key, ~64 kB raw per block
      footer frame            schema, stats, per-block index, Bloom filter
      trailer (24 bytes)      footer offset, footer frame length, magic
    v}

    Each frame is independently compressed (LZ or stored raw when
    incompressible) and protected by a CRC-32C. The index records the
    last key of each block — "on average, these indexes are only 0.5% of
    their tablets' sizes, so LittleTable caches them almost indefinitely
    in main memory"; here the whole footer is held by the open
    {!reader}.

    The footer also carries the Bloom filter of §3.4.5 (built over full
    keys and every column-boundary prefix) when enabled.

    Reading a cold tablet costs the paper's three repositionings —
    open (inode), trailer, footer — and one more per block; the disk
    model observes exactly that pattern. *)

type summary = {
  row_count : int;
  size : int;  (** file size in bytes *)
  min_ts : int64;
  max_ts : int64;
  min_key : string;
  max_key : string;
  columnar : bool;  (** data blocks are column-major *)
}

(** {1 Writing} *)

type writer

(** [writer vfs ~path ~schema ~block_size ~bloom_bits_per_key] starts a
    tablet file. [bloom_bits_per_key = 0] disables the filter.
    [expected_rows], when the caller knows it (a flush knows its memtable
    count; a merge knows the sum of its inputs), sizes the Bloom filter
    exactly; otherwise the writer estimates from the stream. [layout]
    (default row-major) selects the data-block encoding; column-major
    writers accept rows only through {!add_row} and record per-column
    footer stats for aggregate pushdown. *)
val writer :
  Lt_vfs.Vfs.t ->
  path:string ->
  schema:Schema.t ->
  block_size:int ->
  bloom_bits_per_key:int ->
  ?expected_rows:int ->
  ?layout:Block.layout ->
  unit ->
  writer

(** Add a row; keys must arrive in strictly ascending order.
    [key_prefixes] are the column-boundary prefixes for the Bloom filter
    (ignored when the filter is off). *)
val add :
  writer -> key:string -> key_prefixes:string list -> ts:int64 -> value:string -> unit

(** {!add} without the value string: [encode] appends the row's value
    encoding (exactly [value_size] bytes) straight into the current
    block's payload buffer. The flush and merge paths use this so a
    memtable row goes from {!Value.t array} to block bytes with no
    intermediate string. *)
val add_enc :
  writer -> key:string -> key_prefixes:string list -> ts:int64 ->
  value_size:int -> encode:(Buffer.t -> unit) -> unit

(** Add a full decoded row (the writer's schema). Works for both
    layouts, so the merge and bulk-delete rewrite loops — which hold
    decoded rows anyway — need not care which layout the output tablet
    uses. {!add_enc}/{!add} remain the row-major flush hot path. *)
val add_row :
  writer -> key:string -> key_prefixes:string list -> ts:int64 ->
  Value.t array -> unit

(** Flush remaining rows, write footer and trailer, [fsync], close.
    @raise Invalid_argument if no rows were added — empty tablets are
    never written. *)
val finish : writer -> summary

(** Abort and delete the partial file. *)
val abandon : writer -> unit

(** {1 Reading} *)

type reader

(** Open a tablet and load its footer. [into] is the schema rows are
    translated to on read. [cache], when given, is consulted before
    every block read and filled on miss (see {!Lt_cache.Block_cache});
    the reader allocates itself a fresh file id in it. [obs] receives
    per-block read/decompress stage latencies (default: none). *)
val open_reader :
  ?cache:Block.t Lt_cache.Block_cache.t ->
  ?obs:Lt_obs.Obs.t ->
  Lt_vfs.Vfs.t ->
  path:string ->
  into:Schema.t ->
  reader

(** Close the file handle and invalidate this reader's blocks in the
    cache (readers close exactly when their file dies or the table
    shuts down). *)
val close : reader -> unit

val summary : reader -> summary

(** Schema the tablet was written with. *)
val stored_schema : reader -> Schema.t

(** Replace the translation target (after a schema evolution). *)
val set_target_schema : reader -> Schema.t -> unit

(** [false] only when no stored key has [prefix] as a byte prefix at a
    column boundary (or equals it); always [true] when the tablet has no
    Bloom filter. *)
val may_contain_prefix : reader -> string -> bool

(** Exact-key membership, going to disk only when the Bloom filter (if
    any) passes. *)
val mem : reader -> string -> bool

(** Per-scan pushdown counters, shared across the fan-out of one query
    (hence atomic): blocks answered entirely from footer stats, and
    columnar column sections actually decompressed. *)
type scan_counters = {
  sc_footer_blocks : int Atomic.t;
  sc_cols_decoded : int Atomic.t;
}

val fresh_counters : unit -> scan_counters

(** [iter r ~asc ?lo ?hi ?projection ?counters ()] streams rows with
    encoded keys in [\[lo, hi)], ascending or descending; rows are
    translated to the target schema. [projection] (target-schema column
    indices) lets columnar blocks decode only the named columns —
    unprojected non-key cells are unspecified (defaults); row-major
    blocks ignore it. [counters] receives per-block pushdown tallies.
    The returned thunk is single-consumer. *)
val iter :
  reader ->
  asc:bool ->
  ?lo:string ->
  ?hi:string ->
  ?projection:int list ->
  ?counters:scan_counters ->
  unit ->
  unit ->
  (string * Value.t array) option

(** [fold_aggs r ?counters ~lo ~hi ~ts_min ~ts_max ~specs ~accs ()]
    folds every row with key in [\[lo, hi)] and timestamp in
    [\[ts_min, ts_max\]] into [accs] (one accumulator per spec, target
    schema column indices). Columnar blocks whose whole key and
    timestamp ranges fall inside the bounds are absorbed from footer
    stats without being read; remaining blocks decode only referenced
    columns (row-major blocks decode rows as usual). The result is
    bit-identical to feeding the same rows through {!Agg.feed} one at a
    time. *)
val fold_aggs :
  reader ->
  ?counters:scan_counters ->
  lo:string option ->
  hi:string option ->
  ts_min:int64 ->
  ts_max:int64 ->
  specs:Agg.spec array ->
  accs:Agg.acc array ->
  unit ->
  unit

val block_count : reader -> int
