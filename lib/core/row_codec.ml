open Lt_util

let encode_value_into buf schema row =
  Array.iteri
    (fun i v -> if not (Schema.is_pkey schema i) then Value.encode buf v)
    row

let encode_value schema row =
  let buf = Buffer.create 32 in
  encode_value_into buf schema row;
  Buffer.contents buf

(* Decode the non-key columns from a bounded cursor; the cursor's window
   is the value encoding, whether it is a whole string or a slice of a
   block payload. *)
let decode_cursor schema ~key cur =
  let cols = Schema.columns schema in
  let row = Array.make (Array.length cols) (Value.Int32 0l) in
  let kvs = Key_codec.decode_key schema key in
  Array.iteri (fun ki col -> row.(col) <- kvs.(ki)) (Schema.pkey schema);
  Array.iteri
    (fun i col ->
      if not (Schema.is_pkey schema i) then
        row.(i) <- Value.decode col.Schema.ctype cur)
    cols;
  Binio.expect_end cur;
  row

let decode schema ~key ~value = decode_cursor schema ~key (Binio.cursor value)

let decode_slice schema ~key ~data ~off ~len =
  decode_cursor schema ~key (Binio.cursor ~pos:off ~len data)

let decode_translated_cursor ~from ~into ~key cur =
  if Schema.version from = Schema.version into then
    decode_cursor into ~key cur
  else begin
    let row = decode_cursor from ~key cur in
    Schema.translate_row ~from ~into row
  end

let decode_translated ~from ~into ~key ~value =
  decode_translated_cursor ~from ~into ~key (Binio.cursor value)

let decode_translated_slice ~from ~into ~key ~data ~off ~len =
  decode_translated_cursor ~from ~into ~key (Binio.cursor ~pos:off ~len data)

(* Exact encoding sizes without materializing either part (the memtable
   accounts bytes per insert; re-running both encoders here doubled the
   hot path's allocation). Exactness against the real encoders is
   asserted in the model-oracle suite. *)
let value_size schema row =
  let n = ref 0 in
  Array.iteri
    (fun i v ->
      if not (Schema.is_pkey schema i) then n := !n + Value.encoded_size v)
    row;
  !n

let stored_size schema row =
  Key_codec.key_size schema row + value_size schema row
