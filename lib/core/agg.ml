type fn = Count | Sum | Min | Max | Avg

type spec = { a_fn : fn; a_col : int option }

type col_stats = {
  cs_min : Value.t option;
  cs_max : Value.t option;
  cs_sum : int64 option;
}

let no_stats = { cs_min = None; cs_max = None; cs_sum = None }

(* Per-column stats over a batch of rows. Strings and blobs are not
   tracked (their min/max could be arbitrarily long footer entries);
   wrapping int64 sums are kept only for integer columns, where modular
   addition is associative and so safe to combine per block. *)
let stats_of_rows schema rows ~count =
  let cols = Schema.columns schema in
  Array.mapi
    (fun c (col : Schema.column) ->
      match col.Schema.ctype with
      | Value.T_string | Value.T_blob -> no_stats
      | Value.T_int32 | Value.T_int64 | Value.T_double | Value.T_timestamp ->
          let min_v = ref None and max_v = ref None and sum = ref 0L in
          let has_sum =
            match col.Schema.ctype with
            | Value.T_int32 | Value.T_int64 -> true
            | _ -> false
          in
          for i = 0 to count - 1 do
            let v = rows.(i).(c) in
            (match !min_v with
            | None -> min_v := Some v
            | Some m -> if Value.compare v m < 0 then min_v := Some v);
            (match !max_v with
            | None -> max_v := Some v
            | Some m -> if Value.compare v m > 0 then max_v := Some v);
            if has_sum then
              sum :=
                Int64.add !sum
                  (match v with
                  | Value.Int32 x -> Int64.of_int32 x
                  | Value.Int64 x -> x
                  | _ -> 0L)
          done;
          { cs_min = !min_v;
            cs_max = !max_v;
            cs_sum = (if has_sum then Some !sum else None) })
    cols

type acc = {
  mutable count : int64;
  mutable sum : float;
  mutable sum_i : int64;
  mutable is_int : bool;
  mutable min_v : Value.t option;
  mutable max_v : Value.t option;
}

let fresh_acc () =
  { count = 0L;
    sum = 0.0;
    sum_i = 0L;
    is_int = true;
    min_v = None;
    max_v = None }

let feed acc value =
  acc.count <- Int64.add acc.count 1L;
  (match value with
  | Some (Value.Int32 v) ->
      acc.sum_i <- Int64.add acc.sum_i (Int64.of_int32 v);
      acc.sum <- acc.sum +. Int32.to_float v
  | Some (Value.Int64 v) ->
      acc.sum_i <- Int64.add acc.sum_i v;
      acc.sum <- acc.sum +. Int64.to_float v
  | Some (Value.Double v) ->
      acc.is_int <- false;
      acc.sum <- acc.sum +. v
  | Some (Value.Timestamp _ | Value.String _ | Value.Blob _) | None -> ());
  match value with
  | None -> ()
  | Some v ->
      (match acc.min_v with
      | None -> acc.min_v <- Some v
      | Some m -> if Value.compare v m < 0 then acc.min_v <- Some v);
      (match acc.max_v with
      | None -> acc.max_v <- Some v
      | Some m -> if Value.compare v m > 0 then acc.max_v <- Some v)

(* Average over an integer column divides the exact wrapping integer sum,
   not a float running sum: the integer form is associative, so footer
   absorption and row-at-a-time feeding agree bit for bit regardless of
   how rows were grouped into blocks. *)
let result fn acc =
  match fn with
  | Count -> Value.Int64 acc.count
  | Sum -> if acc.is_int then Value.Int64 acc.sum_i else Value.Double acc.sum
  | Avg ->
      if acc.count = 0L then Value.Double 0.0
      else if acc.is_int then
        Value.Double (Int64.to_float acc.sum_i /. Int64.to_float acc.count)
      else Value.Double (acc.sum /. Int64.to_float acc.count)
  | Min -> ( match acc.min_v with Some v -> v | None -> Value.Int64 0L)
  | Max -> ( match acc.max_v with Some v -> v | None -> Value.Int64 0L)

(* Can a whole block answer [spec] from footer stats alone?
   [ctype_of]/[stats_of] take the spec's column index and return [None]
   when the column does not exist in the block's stored schema (it was
   added later; such blocks must decode so translation fills defaults).
   Float sums are never footer-answered: float addition is not
   associative, and the row path must stay bit-identical across
   layouts. *)
let spec_answerable ~stats_of ~ctype_of spec =
  match (spec.a_fn, spec.a_col) with
  | Count, _ -> true
  | _, None -> false
  | (Sum | Avg), Some c -> (
      match ctype_of c with
      | Some (Value.T_int32 | Value.T_int64) -> (
          match stats_of c with
          | Some st -> st.cs_sum <> None
          | None -> false)
      | _ -> false)
  | (Min | Max), Some c -> (
      match stats_of c with
      | Some st -> st.cs_min <> None && st.cs_max <> None
      | None -> false)

let block_answerable ~specs ~stats_of ~ctype_of =
  Array.for_all (spec_answerable ~stats_of ~ctype_of) specs

(* Fold one whole block's footer stats into the accumulators. Caller
   must have checked {!block_answerable}; stats values must already be
   translated to the target schema's column types. *)
let absorb_block ~accs ~specs ~rows ~stats_of =
  Array.iteri
    (fun i spec ->
      let acc = accs.(i) in
      acc.count <- Int64.add acc.count (Int64.of_int rows);
      match (spec.a_fn, spec.a_col) with
      | Count, _ -> ()
      | (Sum | Avg), Some c ->
          let st = Option.get (stats_of c) in
          acc.sum_i <- Int64.add acc.sum_i (Option.get st.cs_sum)
      | (Min | Max), Some c ->
          let st = Option.get (stats_of c) in
          (match (acc.min_v, st.cs_min) with
          | _, None -> ()
          | None, some -> acc.min_v <- some
          | Some m, Some v ->
              if Value.compare v m < 0 then acc.min_v <- Some v);
          (match (acc.max_v, st.cs_max) with
          | _, None -> ()
          | None, some -> acc.max_v <- some
          | Some m, Some v ->
              if Value.compare v m > 0 then acc.max_v <- Some v)
      | (Sum | Avg | Min | Max), None -> assert false)
    specs
