(** Shared aggregation accumulators and per-block column statistics.

    One accumulator definition serves both the SQL executor's row-at-a-time
    aggregation and the storage layer's footer pushdown, so the two paths
    cannot drift semantically: a footer-answered [count/sum/min/max/avg]
    is bit-identical to the value obtained by decoding every row. *)

type fn = Count | Sum | Min | Max | Avg

(** An aggregate over a target-schema column ([a_col = None] only for
    [Count], i.e. [count( * )]). *)
type spec = { a_fn : fn; a_col : int option }

(** Per-column statistics for one block, recorded in the tablet footer
    of columnar tablets. [cs_min]/[cs_max] are [None] for string/blob
    columns (unbounded footer size); [cs_sum] is the wrapping [int64]
    sum and present only for integer columns, where modular addition is
    associative. Values are typed by the schema the block was written
    under. *)
type col_stats = {
  cs_min : Value.t option;
  cs_max : Value.t option;
  cs_sum : int64 option;
}

val no_stats : col_stats

(** [stats_of_rows schema rows ~count] computes stats over
    [rows.(0 .. count-1)], one entry per schema column. *)
val stats_of_rows : Schema.t -> Value.t array array -> count:int -> col_stats array

(** {1 Accumulators} *)

type acc = {
  mutable count : int64;
  mutable sum : float;
  mutable sum_i : int64;
  mutable is_int : bool;
  mutable min_v : Value.t option;
  mutable max_v : Value.t option;
}

val fresh_acc : unit -> acc

(** [feed acc v] folds one row's cell in ([None] for [count( * )]). *)
val feed : acc -> Value.t option -> unit

(** Final value. [Avg] over an integer column divides the exact wrapping
    integer sum by the count, so the result does not depend on feeding
    order or on block boundaries. Empty [Min]/[Max] yield [Int64 0];
    empty [Avg] yields [Double 0.]. *)
val result : fn -> acc -> Value.t

(** {1 Footer pushdown} *)

(** [block_answerable ~specs ~stats_of ~ctype_of] holds when every spec
    in [specs] can be answered for a whole block from footer stats
    alone. [stats_of]/[ctype_of] map a spec's target-schema column index
    to the block's stats/stored type, returning [None] when the column
    is absent from the stored schema. *)
val block_answerable :
  specs:spec array ->
  stats_of:(int -> col_stats option) ->
  ctype_of:(int -> Value.ctype option) ->
  bool

(** [absorb_block ~accs ~specs ~rows ~stats_of] folds a whole block's
    footer stats into the accumulators ([accs.(i)] for [specs.(i)]).
    The caller must have checked {!block_answerable}, and stats values
    must already be widened to the target schema's column types. *)
val absorb_block :
  accs:acc array ->
  specs:spec array ->
  rows:int ->
  stats_of:(int -> col_stats option) ->
  unit
