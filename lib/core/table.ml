open Lt_util
module Vfs = Lt_vfs.Vfs
module Bcache = Lt_cache.Block_cache
module Obs = Lt_obs.Obs
module Otrace = Lt_obs.Trace
module Ometrics = Lt_obs.Metrics
module Pool = Lt_exec.Pool
module Pscan = Lt_exec.Pscan

exception Duplicate_key of string

type disk_tablet = {
  mutable meta : Descriptor.tablet_meta;
  mutable reader : Tablet.reader option;
  mutable refs : int;
  mutable doomed : bool;
  mutable last_cls : Period.class_;
  mutable eligible_at : int64;
}

type t = {
  vfs : Vfs.t;
  clock : Clock.t;
  config : Config.t;
  dir : string;
  tname : string;
  mutable schema : Schema.t;
  mutable ttl : int64 option;
  mutable next_id : int;
  mutable filling : Memtable.t list;  (** one per active period bin *)
  mutable frozen : Memtable.t list;  (** oldest frozen first *)
  mutable disk : disk_tablet list;  (** timespan order *)
  mutable doomed_paths : string list;
      (** unreferenced tablet files awaiting deletion; guarded by
          [state]. Unlinking is blocking VFS work, so doomed files are
          only queued under the lock and actually deleted by
          [drain_doomed] outside every lock region. *)
  graph : Flush_graph.t;
  mutable last_insert_tablet : int option;
  mutable max_ts_seen : int64 option;
  mutable flush_failures : int;
      (** consecutive failed flush attempts; guarded by [writer_lock] *)
  mutable flush_retry_at : int64;
      (** no background flush retry before this time; guarded by [writer_lock] *)
  mutable commit_seq : int;
      (** bumped per acked insert batch; guarded by [state] *)
  mutable durable_seq : int;
      (** highest [commit_seq] covered by a completed explicit flush
          round; guarded by [state] *)
  mutable commit_round_active : bool;
      (** an explicit flush round is in flight; guarded by [state] *)
  commit_cond : Condition.t;
      (** waits on [state]; broadcast when a flush round ends *)
  state : Mutex.t;  (** guards all mutable fields above *)
  writer_lock : Mutex.t;  (** serializes inserts, flushes, schema changes *)
  maint_lock : Mutex.t;  (** serializes merges and expiry *)
  stats : Stats.t;
  cache : Block.t Bcache.t option;
      (** process-wide block cache, shared across the {!Db}'s tables *)
  obs : Obs.t;
  instr : Obs.table_instruments;
  pool : Pool.t option;
      (** worker pool for parallel tablet scans; [None] = sequential *)
  rng : Xorshift.t;
  mutable closed : bool;
}

let now t = Clock.now t.clock

let name t = t.tname

let dir t = t.dir

let schema t = Mutexes.with_lock t.state (fun () -> t.schema)

let ttl t = Mutexes.with_lock t.state (fun () -> t.ttl)

let stats t =
  let cache =
    Option.map
      (fun c ->
        let k = Bcache.counters c in
        {
          Stats.cache_hits = k.Bcache.hits;
          cache_misses = k.Bcache.misses;
          cache_evictions = k.Bcache.evictions;
          cache_inserted_bytes = k.Bcache.inserted_bytes;
          cache_resident_bytes = k.Bcache.resident_bytes;
        })
      t.cache
  in
  Stats.read ?cache t.stats

let tablet_path t file = Filename.concat t.dir file

(* ------------------------------------------------------------------ *)
(* Observability spans                                                 *)
(* ------------------------------------------------------------------ *)

let cache_counts t =
  match t.cache with
  | None -> (0, 0)
  | Some c ->
      let k = Bcache.counters c in
      (k.Bcache.hits, k.Bcache.misses)

(* Open a span: clock time plus the block-cache counters at entry, so
   the closing side can attribute hit/miss deltas to this operation
   (approximate under concurrent readers — see DESIGN.md). All zero
   when observability is off. *)
let obs_begin t =
  if Obs.enabled t.obs then
    let h, m = cache_counts t in
    (Clock.now t.clock, h, m)
  else (0L, 0, 0)

let obs_end t ~hist ~op ~t0 ~h0 ~m0 ?(scanned = 0) ?(returned = 0)
    ?(tablets = 0) () =
  if Obs.enabled t.obs then begin
    let h1, m1 = cache_counts t in
    Obs.record_op t.obs ~hist ~op ~table:t.tname ~t0 ~scanned ~returned
      ~tablets ~cache_hits:(h1 - h0) ~cache_misses:(m1 - m0) ()
  end

(* Per-query profile accumulator ([query ~profile]). Parallel-scan
   worker callbacks update it from pool domains, hence the mutex.
   Timed with [t.clock] directly: profiling is an explicit per-query
   opt-in and must work even when [Config.obs_enabled] is false. *)
type prof_acc = {
  pr_mutex : Mutex.t;
  mutable pr_plan_us : int64;
  mutable pr_scan_us : int64; (* summed worker busy time when staged *)
  mutable pr_stall_us : int64;
  mutable pr_staged : bool; (* parallel path taken *)
}

let prof_acc_create () =
  { pr_mutex = Mutex.create ();
    pr_plan_us = 0L;
    pr_scan_us = 0L;
    pr_stall_us = 0L;
    pr_staged = false }

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let seed_of_name name =
  (* Deterministic per-table randomness for merge-delay spreading. *)
  let h = ref 1469598103934665603L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 1099511628211L)
    name;
  !h

let make vfs ~clock ~config ~dir ~name ~desc ~cache ~obs ~pool =
  let open Descriptor in
  let n = Clock.now clock in
  let disk =
    List.map
      (fun meta ->
        {
          meta;
          reader = None;
          refs = 0;
          doomed = false;
          last_cls = Period.classify ~now:n meta.min_ts;
          eligible_at = Int64.add n config.Config.merge_delay;
        })
      desc.tablets
  in
  let max_ts_seen =
    List.fold_left
      (fun acc m ->
        match acc with
        | None -> Some m.max_ts
        | Some v -> Some (max v m.max_ts))
      None desc.tablets
  in
  {
    vfs;
    clock;
    config;
    dir;
    tname = name;
    schema = desc.schema;
    ttl = desc.ttl;
    next_id = desc.next_id;
    filling = [];
    frozen = [];
    disk;
    doomed_paths = [];
    graph = Flush_graph.create ();
    last_insert_tablet = None;
    max_ts_seen;
    flush_failures = 0;
    flush_retry_at = 0L;
    commit_seq = 0;
    durable_seq = 0;
    commit_round_active = false;
    commit_cond = Condition.create ();
    state = Mutex.create ();
    writer_lock = Mutex.create ();
    maint_lock = Mutex.create ();
    stats = Stats.create ();
    cache;
    obs;
    instr = Obs.table_instruments obs ~table:name;
    pool;
    rng = Xorshift.create (seed_of_name name);
    closed = false;
  }

let create ?cache ?(obs = Obs.noop) ?pool vfs ~clock ~config ~dir ~name schema
    ~ttl =
  Vfs.mkdir_p vfs dir;
  if Descriptor.exists vfs ~dir then
    invalid_arg (Printf.sprintf "Table.create: %s already holds a table" dir);
  let desc = Descriptor.{ schema; ttl; next_id = 1; tablets = [] } in
  Descriptor.save vfs ~dir desc;
  make vfs ~clock ~config ~dir ~name ~desc ~cache ~obs ~pool

let quarantine_log = Logs.Src.create "lt.quarantine" ~doc:"Tablet quarantine"

let is_quarantine_file entry = Filename.check_suffix entry ".quarantine"

let open_ ?cache ?(obs = Obs.noop) ?pool vfs ~clock ~config ~dir ~name =
  let desc = Descriptor.load vfs ~dir in
  (* Crash hygiene: a crash or failed flush can leave tablet files that
     never made it into a descriptor (and interrupted descriptor
     temporaries). Anything the descriptor does not reference is dead —
     except quarantined tablets, kept aside for forensics. *)
  let referenced =
    Descriptor.file_name :: List.map (fun m -> m.Descriptor.file) desc.Descriptor.tablets
  in
  List.iter
    (fun entry ->
      if (not (List.mem entry referenced)) && not (is_quarantine_file entry) then
        try Vfs.delete vfs (Filename.concat dir entry) with Vfs.Io_error _ -> ())
    (try Vfs.readdir vfs dir with Vfs.Io_error _ -> []);
  (* Validate every referenced tablet; a corrupt or truncated one is set
     aside rather than making the whole table unopenable. A missing file
     is simply dropped — there is nothing left to preserve. *)
  let quarantined = ref 0 in
  let validate m =
    let path = Filename.concat dir m.Descriptor.file in
    match
      let r = Tablet.open_reader vfs ~path ~into:desc.Descriptor.schema in
      Tablet.close r
    with
    | () -> true
    | exception ((Binio.Corrupt _ | Lt_vfs.Vfs.Io_error _) as e) ->
        incr quarantined;
        let reason =
          match e with
          | Binio.Corrupt msg -> msg
          | Lt_vfs.Vfs.Io_error msg -> msg
          | _ -> assert false
        in
        if Vfs.exists vfs path then begin
          (try Vfs.rename vfs ~src:path ~dst:(path ^ ".quarantine")
           with Vfs.Io_error _ -> (
             try Vfs.delete vfs path with Vfs.Io_error _ -> ()));
          (try Vfs.sync_dir vfs dir with Vfs.Io_error _ -> ())
        end;
        Logs.warn ~src:quarantine_log (fun f ->
            f "table %s: quarantined tablet %s (%s)" name m.Descriptor.file
              reason);
        false
  in
  let good = List.filter validate desc.Descriptor.tablets in
  let desc =
    if !quarantined = 0 then desc
    else begin
      let desc = { desc with Descriptor.tablets = good } in
      Descriptor.save vfs ~dir desc;
      desc
    end
  in
  let t = make vfs ~clock ~config ~dir ~name ~desc ~cache ~obs ~pool in
  if !quarantined > 0 then
    Stats.note_quarantined t.stats ~tablets:!quarantined;
  t

(* Must be called with [state] held. *)
let save_descriptor_locked t =
  let tablets = List.map (fun dt -> dt.meta) t.disk in
  let desc =
    Descriptor.{ schema = t.schema; ttl = t.ttl; next_id = t.next_id; tablets }
  in
  Descriptor.save t.vfs ~dir:t.dir desc

(* Must be called with [state] held. *)
let get_reader_locked t dt =
  match dt.reader with
  | Some r -> r
  | None ->
      let r =
        Tablet.open_reader ?cache:t.cache ~obs:t.obs t.vfs
          ~path:(tablet_path t dt.meta.Descriptor.file)
          ~into:t.schema
      in
      dt.reader <- Some r;
      r

(* Must be called with [state] held: closes the reader and queues the
   file for [drain_doomed]. The durable descriptor no longer references
   the tablet, so the unlink can wait until no lock is held. *)
let destroy_tablet_locked t dt =
  (match dt.reader with Some r -> Tablet.close r | None -> ());
  dt.reader <- None;
  t.doomed_paths <- tablet_path t dt.meta.Descriptor.file :: t.doomed_paths

(* Unlink every queued doomed file. Must be called with no table lock
   held: deletion is blocking VFS work. Best-effort — a failed delete
   merely leaks a file that the hygiene sweep at the next [open_]
   reclaims. It must not fail the operation whose commit already
   succeeded. *)
let drain_doomed t =
  let paths =
    Mutexes.with_lock t.state (fun () ->
        let ps = t.doomed_paths in
        t.doomed_paths <- [];
        ps)
  in
  List.iter
    (fun path ->
      try if Vfs.exists t.vfs path then Vfs.delete t.vfs path
      with Vfs.Io_error _ -> ())
    paths

(* Must be called with [state] held. *)
let release_locked t dts =
  List.iter
    (fun dt ->
      dt.refs <- dt.refs - 1;
      if dt.doomed && dt.refs = 0 then destroy_tablet_locked t dt)
    dts

let release t dts =
  Mutexes.with_lock t.state (fun () -> release_locked t dts);
  drain_doomed t

let close t =
  Mutexes.with_lock t.state (fun () ->
      if not t.closed then begin
        t.closed <- true;
        List.iter
          (fun dt -> match dt.reader with
            | Some r -> Tablet.close r; dt.reader <- None
            | None -> ())
          t.disk
      end)

(* ------------------------------------------------------------------ *)
(* TTL and schema changes                                              *)
(* ------------------------------------------------------------------ *)

let ttl_cutoff_locked t =
  match t.ttl with
  | None -> None
  | Some ttl -> Some (Int64.sub (now t) ttl)

let set_ttl t ttl =
  Mutexes.with_lock t.writer_lock (fun () ->
      Mutexes.with_lock t.state (fun () ->
          t.ttl <- ttl;
          save_descriptor_locked t))

let rebuild_memtable t ~from mt =
  let fresh =
    Memtable.create ~id:(Memtable.id mt) ~period:(Memtable.period mt)
      ~created_at:(Memtable.created_at mt)
  in
  let it = Avl.iter_asc (Memtable.snapshot mt) in
  let rec go () =
    match Avl.next it with
    | None -> ()
    | Some (key, row) ->
        let row = Schema.translate_row ~from ~into:t.schema row in
        (match Memtable.insert fresh ~key ~ts:(Key_codec.ts_of_key key) row with
        | `Ok -> Memtable.add_bytes fresh (Row_codec.stored_size t.schema row)
        | `Duplicate -> assert false);
        go ()
  in
  go ();
  fresh

let change_schema t f =
  Mutexes.with_lock t.writer_lock (fun () ->
      Mutexes.with_lock t.state (fun () ->
          let old = t.schema in
          t.schema <- f old;
          t.filling <- List.map (rebuild_memtable t ~from:old) t.filling;
          t.frozen <- List.map (rebuild_memtable t ~from:old) t.frozen;
          List.iter
            (fun dt ->
              match dt.reader with
              | Some r -> Tablet.set_target_schema r t.schema
              | None -> ())
            t.disk;
          save_descriptor_locked t))

let add_column t col = change_schema t (fun s -> Schema.add_column s col)

let widen_column t cname = change_schema t (fun s -> Schema.widen_column s cname)

(* ------------------------------------------------------------------ *)
(* Flushing                                                            *)
(* ------------------------------------------------------------------ *)

let freeze_locked t mt =
  t.filling <- List.filter (fun m -> Memtable.id m <> Memtable.id mt) t.filling;
  if not (List.exists (fun m -> Memtable.id m = Memtable.id mt) t.frozen) then
    t.frozen <- t.frozen @ [ mt ]

(* Write one memtable out as a tablet file; no descriptor update yet.
   Runs without the state lock: frozen memtables are immutable. *)
let write_memtable t mt =
  let schema = Mutexes.with_lock t.state (fun () -> t.schema) in
  let id = Memtable.id mt in
  let file = Descriptor.tablet_file id in
  let writer =
    Tablet.writer t.vfs ~path:(tablet_path t file) ~schema
      ~block_size:t.config.Config.block_size
      ~bloom_bits_per_key:t.config.Config.bloom_bits_per_key
      ~expected_rows:(Memtable.row_count mt) ()
  in
  let it = Avl.iter_asc (Memtable.snapshot mt) in
  let summary =
    (* A failure mid-write leaves a partial tablet; abandon it so only
       complete files ever carry a tablet name. The memtable itself is
       untouched — the caller keeps it queued for retry. *)
    try
      let rec go () =
        match Avl.next it with
        | None -> ()
        | Some (key, row) ->
            let _, prefixes = Key_codec.encode_key_with_prefixes schema row in
            Tablet.add_enc writer ~key ~key_prefixes:prefixes
              ~ts:(Key_codec.ts_of_key key)
              ~value_size:(Row_codec.value_size schema row)
              ~encode:(fun buf -> Row_codec.encode_value_into buf schema row);
            go ()
      in
      go ();
      Tablet.finish writer
    with e ->
      Tablet.abandon writer;
      raise e
  in
  Descriptor.
    {
      id;
      file;
      min_ts = summary.Tablet.min_ts;
      max_ts = summary.Tablet.max_ts;
      min_key = summary.Tablet.min_key;
      max_key = summary.Tablet.max_key;
      row_count = summary.Tablet.row_count;
      size = summary.Tablet.size;
      columnar = summary.Tablet.columnar;
    }

(* Flush [mt] and its dependency closure as one atomic descriptor
   update (§3.4.3). Caller holds [writer_lock]. *)
let flush_closure t mt =
  let members =
    Mutexes.with_lock t.state (fun () ->
        let ids = Flush_graph.closure t.graph (Memtable.id mt) in
        let in_ids m = List.mem (Memtable.id m) ids in
        let from_filling = List.filter in_ids t.filling in
        (* Anything still filling in the closure freezes now. *)
        List.iter (freeze_locked t) from_filling;
        List.filter in_ids t.frozen)
  in
  let members =
    if List.exists (fun m -> Memtable.id m = Memtable.id mt) members then members
    else mt :: members
  in
  let members, empties =
    List.partition (fun m -> Memtable.row_count m > 0) members
  in
  (* Empty memtables (possible after a bulk delete) have nothing to
     write; drop them from the queues or the flush loop would pick them
     forever. *)
  if empties <> [] then
    Mutexes.with_lock t.state (fun () ->
        let ids = List.map Memtable.id empties in
        t.frozen <- List.filter (fun m -> not (List.mem (Memtable.id m) ids)) t.frozen;
        t.filling <- List.filter (fun m -> not (List.mem (Memtable.id m) ids)) t.filling;
        Flush_graph.remove t.graph ids;
        match t.last_insert_tablet with
        | Some id when List.mem id ids -> t.last_insert_tablet <- None
        | _ -> ());
  let metas =
    List.map
      (fun m ->
        let t0, h0, m0 = obs_begin t in
        let meta = write_memtable t m in
        obs_end t ~hist:t.instr.Obs.h_flush ~op:Otrace.Flush ~t0 ~h0 ~m0
          ~returned:meta.Descriptor.row_count ();
        (m, meta))
      members
  in
  Mutexes.with_lock t.state (fun () ->
      let n = now t in
      let new_dts =
        List.map
          (fun (_, meta) ->
            {
              meta;
              reader = None;
              refs = 0;
              doomed = false;
              last_cls = Period.classify ~now:n meta.Descriptor.min_ts;
              eligible_at = Int64.add n t.config.Config.merge_delay;
            })
          metas
      in
      let saved_disk = t.disk in
      t.disk <-
        List.sort
          (fun a b ->
            match Int64.compare a.meta.Descriptor.min_ts b.meta.Descriptor.min_ts with
            | 0 -> Int.compare a.meta.Descriptor.id b.meta.Descriptor.id
            | c -> c)
          (new_dts @ t.disk);
      (* Persist before touching the queues: if the descriptor save
         fails, the memtables must stay frozen (the rows are acked and
         nowhere else) and the new files die unreferenced. *)
      (match save_descriptor_locked t with
      | () -> ()
      | exception e ->
          t.disk <- saved_disk;
          List.iter
            (fun (_, meta) ->
              t.doomed_paths <-
                tablet_path t meta.Descriptor.file :: t.doomed_paths)
            metas;
          raise e);
      List.iter
        (fun (m, meta) ->
          Stats.note_flush t.stats ~bytes:meta.Descriptor.size;
          let id = Memtable.id m in
          t.frozen <- List.filter (fun x -> Memtable.id x <> id) t.frozen;
          if t.last_insert_tablet = Some id then t.last_insert_tablet <- None)
        metas;
      Flush_graph.remove t.graph (List.map (fun (m, _) -> Memtable.id m) metas))

(* Retry backoff for background flushes: 100 ms doubling to a 10 s cap. *)
let flush_backoff_base_us = 100_000
let flush_backoff_cap_us = 10_000_000

(* Caller holds [writer_lock]. With [swallow] (the insert and
   maintenance paths), a transient I/O failure is absorbed: the frozen
   memtables stay queued, a retry counter bumps, and further background
   attempts wait out an exponential backoff. Without it (explicit
   flushes, whose callers need durability-or-error), failures propagate
   and the backoff clock is ignored. *)
let flush_frozen_backlog ?(swallow = false) t ~limit =
  let rec go () =
    let next =
      Mutexes.with_lock t.state (fun () ->
          if List.length t.frozen >= limit then
            match t.frozen with [] -> None | m :: _ -> Some m
          else None)
    in
    match next with
    | None -> ()
    | Some m ->
        if swallow then begin
          if now t >= t.flush_retry_at then begin
            match flush_closure t m with
            | () ->
                t.flush_failures <- 0;
                t.flush_retry_at <- 0L;
                go ()
            | exception Vfs.Io_error _ ->
                t.flush_failures <- t.flush_failures + 1;
                Stats.note_flush_retry t.stats;
                let backoff =
                  min flush_backoff_cap_us
                    (flush_backoff_base_us
                    * (1 lsl min 10 (t.flush_failures - 1)))
                in
                t.flush_retry_at <- Int64.add (now t) (Int64.of_int backoff)
          end
        end
        else begin
          flush_closure t m;
          t.flush_failures <- 0;
          t.flush_retry_at <- 0L;
          go ()
        end
  in
  go ()

(* Group commit: concurrent explicit-durability callers ([flush_all],
   [flush_before]) share one flush round — and so one set of fsyncs —
   instead of queueing N identical rounds on [writer_lock]. A caller
   whose insert batches are already covered returns without touching
   the writer lock; one arriving while a round is in flight waits for
   that round and rechecks; otherwise it leads a round itself. A led
   round freezes everything filling and drains the frozen backlog, so
   it covers every batch acked before its freeze point. *)
let rec commit_rounds t =
  let role =
    Mutexes.with_lock t.state (fun () ->
        let target = t.commit_seq in
        if t.durable_seq >= target then `Covered
        else if t.commit_round_active then begin
          while t.commit_round_active do
            Condition.wait t.commit_cond t.state
          done;
          if t.durable_seq >= target then `Joined else `Retry
        end
        else begin
          t.commit_round_active <- true;
          `Lead
        end)
  in
  let count mode =
    if Obs.enabled t.obs then
      Ometrics.Counter.inc (Obs.group_commit t.obs ~table:t.tname ~mode) 1
  in
  match role with
  | `Covered -> ()
  | `Joined -> count "joined"
  | `Retry -> commit_rounds t
  | `Lead ->
      count "led";
      Fun.protect
        ~finally:(fun () ->
          Mutexes.with_lock t.state (fun () ->
              t.commit_round_active <- false;
              Condition.broadcast t.commit_cond))
        (fun () ->
          Mutexes.with_lock t.writer_lock (fun () ->
              let covered =
                Mutexes.with_lock t.state (fun () ->
                    List.iter (freeze_locked t) t.filling;
                    t.commit_seq)
              in
              flush_frozen_backlog t ~limit:1;
              Mutexes.with_lock t.state (fun () ->
                  if covered > t.durable_seq then t.durable_seq <- covered)))

let flush_all t = commit_rounds t

(* Anything inserted before the call with any timestamp — including
   every row with ts [<= ts] — is covered by a full round, so the §4.1.2
   flush-before-timestamp command rides the same group commit. *)
let flush_before t ~ts:_ = commit_rounds t

(* ------------------------------------------------------------------ *)
(* Inserts                                                             *)
(* ------------------------------------------------------------------ *)

let pp_key schema key =
  match Key_codec.decode_key schema key with
  | vs ->
      String.concat ", " (Array.to_list (Array.map Value.to_string vs))
  | exception _ -> "<undecodable>"

(* Uniqueness verdict (§3.4.4) that can be reached without touching
   disk, under [t.state]. Fast paths: a timestamp newer than everything
   seen is provably fresh, and the [target] memtable — the one the row
   is about to land in — is skipped because [Memtable.insert] detects
   its own duplicates, so checking it here would traverse the tree
   twice. [`Check cands] means only a point read can decide; the
   candidates' refcounts are bumped so the caller can read them with
   the lock released. Caller holds [writer_lock], so no new rows can
   appear concurrently. *)
let classify_unique_locked t ~key ~ts ~target =
  match t.max_ts_seen with
  | Some mts when ts > mts -> `Unique
  | _ ->
      let other m =
        (match target with
        | Some tgt -> Memtable.id m <> Memtable.id tgt
        | None -> true)
        && Memtable.mem m key
      in
      if List.exists other t.filling
         || List.exists (fun m -> Memtable.mem m key) t.frozen
      then `Duplicate
      else begin
        let cands =
          List.filter
            (fun dt ->
              let m = dt.meta in
              ts >= m.Descriptor.min_ts && ts <= m.Descriptor.max_ts
              && String.compare key m.Descriptor.min_key >= 0
              && String.compare key m.Descriptor.max_key <= 0)
            t.disk
        in
        match cands with
        | [] -> `Unique
        | _ ->
            List.iter (fun dt -> dt.refs <- dt.refs + 1) cands;
            `Check cands
      end

(* Caller holds [t.state]. *)
let create_memtable_locked t ~now:n bin =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let m = Memtable.create ~id ~period:bin ~created_at:n in
  t.filling <- m :: t.filling;
  m

(* Land one validated row in [mt]. Caller holds [t.state]. Returns
   [true] when the insert pushed [mt] over the flush threshold and it
   was frozen out of [t.filling]. *)
let insert_into_locked t mt ~key ~ts row =
  (match t.last_insert_tablet with
  | Some prev when prev <> Memtable.id mt ->
      Flush_graph.add_edge t.graph ~before:prev ~after:(Memtable.id mt)
  | _ -> ());
  t.last_insert_tablet <- Some (Memtable.id mt);
  (match Memtable.insert mt ~key ~ts row with
  | `Ok -> Memtable.add_bytes mt (Row_codec.stored_size t.schema row)
  | `Duplicate -> raise (Duplicate_key (pp_key t.schema key)));
  (match t.max_ts_seen with
  | Some v when v >= ts -> ()
  | _ -> t.max_ts_seen <- Some ts);
  if Memtable.byte_size mt >= t.config.Config.flush_size then begin
    freeze_locked t mt;
    true
  end
  else false

(* The batched insert driver: runs of rows share one [t.state]
   acquisition (capped at [max_run] so concurrent readers interleave
   with a large batch), so a B-row batch costs O(B / max_run) lock
   round trips instead of two per row. A row whose uniqueness needs a
   disk point read (rare: its ts and key fall inside a flushed
   tablet's bounds) ends the run, reads with the lock released, and
   the loop resumes. Caller holds [writer_lock]. *)
let insert_rows_locked t rows ~landed =
  let max_run = 512 in
  let pending = ref rows in
  while !pending <> [] do
    let deferred =
      Mutexes.with_lock t.state (fun () ->
          let n = now t in
          let run = ref 0 in
          let defer = ref None in
          (* Memtable cache: with [n] fixed for the chunk, every ts
             inside the cached bin's half-open window provably maps to
             the same filling memtable, so consecutive rows of one
             period skip the bin computation and the filling scan.
             Invalidated when the target freezes out of [t.filling]. *)
          let cache = ref None in
          while Option.is_none !defer && !pending <> [] && !run < max_run do
            (match !pending with
            | [] -> assert false
            | row :: rest ->
                Schema.validate_row t.schema row;
                let ts = Schema.row_ts t.schema row in
                let key = Key_codec.encode_key t.schema row in
                let target, bin =
                  match !cache with
                  | Some (b0, b1, mt) when ts >= b0 && ts < b1 ->
                      (Some mt, None)
                  | _ ->
                      let b = Period.bin ~now:n ts in
                      ( List.find_opt
                          (fun m -> Memtable.period m = b)
                          t.filling,
                        Some b )
                in
                let verdict =
                  if t.config.Config.enforce_unique then
                    classify_unique_locked t ~key ~ts ~target
                  else `Unique
                in
                (match verdict with
                | `Duplicate -> raise (Duplicate_key (pp_key t.schema key))
                | `Check cands -> defer := Some (row, key, ts, cands)
                | `Unique ->
                    let mt =
                      match target with
                      | Some m -> m
                      | None -> create_memtable_locked t ~now:n (Option.get bin)
                    in
                    (match bin with
                    | Some b ->
                        cache := Some (b.Period.start, Period.stop b, mt)
                    | None -> ());
                    if insert_into_locked t mt ~key ~ts row then cache := None;
                    incr landed;
                    pending := rest));
            incr run
          done;
          !defer)
    in
    match deferred with
    | None -> ()
    | Some (row, key, ts, cands) ->
        let dup =
          Fun.protect
            ~finally:(fun () ->
              (* [writer_lock] is held on this path: release without
                 draining; the next lock-free [drain_doomed] (any query
                 release or maintenance pass) unlinks the files. *)
              Mutexes.with_lock t.state (fun () -> release_locked t cands))
            (fun () ->
              List.exists
                (fun dt ->
                  let r =
                    Mutexes.with_lock t.state (fun () -> get_reader_locked t dt)
                  in
                  Tablet.mem r key)
                cands)
        in
        if dup then raise (Duplicate_key (pp_key t.schema key));
        Mutexes.with_lock t.state (fun () ->
            let n = now t in
            let bin = Period.bin ~now:n ts in
            let mt =
              match
                List.find_opt (fun m -> Memtable.period m = bin) t.filling
              with
              | Some m -> m
              | None -> create_memtable_locked t ~now:n bin
            in
            ignore (insert_into_locked t mt ~key ~ts row));
        incr landed;
        (match !pending with _ :: rest -> pending := rest | [] -> ())
  done

(* [insert_report] is [insert] that reports a mid-batch uniqueness
   violation as data instead of an exception: [Error (landed, msg)]
   says exactly how many leading rows committed before the duplicate
   (they stay inserted — §3.4.4 checks row by row), so a caller can
   retry only the remainder instead of double-sending. *)
let insert_report t rows =
  let t0, h0, m0 = obs_begin t in
  let landed = ref 0 in
  let result =
    Mutexes.with_lock t.writer_lock (fun () ->
        let res =
          try
            insert_rows_locked t rows ~landed;
            Ok ()
          with Duplicate_key msg -> Error (!landed, msg)
        in
        if !landed > 0 then begin
          Stats.note_insert t.stats ~rows:!landed;
          Mutexes.with_lock t.state (fun () ->
              t.commit_seq <- t.commit_seq + 1)
        end;
        flush_frozen_backlog ~swallow:true t ~limit:t.config.Config.flush_backlog;
        res)
  in
  obs_end t ~hist:t.instr.Obs.h_insert ~op:Otrace.Insert ~t0 ~h0 ~m0
    ~returned:!landed ();
  result

let insert t rows =
  match insert_report t rows with
  | Ok () -> ()
  | Error (_, msg) -> raise (Duplicate_key msg)

let insert_row t row = insert t [ row ]

let max_ts t = Mutexes.with_lock t.state (fun () -> t.max_ts_seen)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

type scan = {
  sources : (int * Cursor.source) list;
  referenced : disk_tablet list;
  eff_ts_min : int64 option;
  considered : int; (* disk tablets before range pruning *)
}

(* Select overlapping tablets and snapshot memtables. Takes refs on the
   disk tablets; the caller must [release] them. [projection] and
   [counters] thread through to {!Tablet.iter} so columnar tablets
   decode only the referenced columns and report pushdown tallies. *)
let open_scan ?projection ?counters t ~(compiled : Query.compiled) ~ts_min
    ~ts_max ~asc =
  Mutexes.with_lock t.state (fun () ->
      let cutoff = ttl_cutoff_locked t in
      let eff_ts_min =
        match (ts_min, cutoff) with
        | None, c -> c
        | (Some _ as m), None -> m
        | Some m, Some c -> Some (max m c)
      in
      let ts_overlaps ~lo ~hi =
        (match eff_ts_min with None -> true | Some b -> hi >= b)
        && match ts_max with None -> true | Some b -> lo <= b
      in
      let key_overlaps ~min_key ~max_key =
        String.compare compiled.Query.lo max_key <= 0
        &&
        match compiled.Query.hi with
        | None -> true
        | Some h -> String.compare h min_key > 0
      in
      let mem_sources =
        List.filter_map
          (fun m ->
            match Memtable.ts_range m with
            | Some (lo, hi) when ts_overlaps ~lo ~hi ->
                let snap = Memtable.snapshot m in
                let lo = compiled.Query.lo and hi = compiled.Query.hi in
                let it =
                  if asc then Avl.iter_asc ~lo ?hi snap
                  else Avl.iter_desc ~lo ?hi snap
                in
                Some (Memtable.id m, fun () -> Avl.next it)
            | _ -> None)
          (t.filling @ t.frozen)
      in
      let selected =
        List.filter
          (fun dt ->
            let m = dt.meta in
            ts_overlaps ~lo:m.Descriptor.min_ts ~hi:m.Descriptor.max_ts
            && key_overlaps ~min_key:m.Descriptor.min_key
                 ~max_key:m.Descriptor.max_key)
          t.disk
      in
      List.iter (fun dt -> dt.refs <- dt.refs + 1) selected;
      let disk_sources =
        List.map
          (fun dt ->
            let r = get_reader_locked t dt in
            ( dt.meta.Descriptor.id,
              Tablet.iter r ~asc ~lo:compiled.Query.lo ?hi:compiled.Query.hi
                ?projection ?counters () ))
          selected
      in
      { sources = mem_sources @ disk_sources;
        referenced = selected;
        eff_ts_min;
        considered = List.length t.disk })

let empty_source () = None

(* Fan the scan's sources out over the worker pool when it can help: a
   pool is configured, the scan touches disk, and there is more than one
   source. Each source gets a single self-rescheduling producer task at
   a time, so the memtable AVL snapshots (immutable) and per-source
   tablet iterators (never shared between tasks) need no extra locking.
   The returned finish function must run before the caller releases its
   tablet references; {!Pscan.stage} guarantees no producer task is
   still reading after it returns. *)
let maybe_stage ?prof t ~has_disk sources =
  match t.pool with
  | Some pool when has_disk && List.length sources > 1 ->
      let obs_on = Obs.enabled t.obs in
      if obs_on then
        Ometrics.Histogram.observe t.instr.Obs.h_fanout
          (float_of_int (List.length sources));
      (match prof with
      | Some pr ->
          Mutexes.with_lock pr.pr_mutex (fun () -> pr.pr_staged <- true)
      | None -> ());
      let timed = obs_on || prof <> None in
      let now_us () = if timed then Clock.now t.clock else 0L in
      let on_worker ~busy_us ~rows:_ =
        if obs_on then
          Ometrics.Histogram.observe_us t.instr.Obs.h_worker_scan busy_us;
        match prof with
        | Some pr ->
            Mutexes.with_lock pr.pr_mutex (fun () ->
                pr.pr_scan_us <- Int64.add pr.pr_scan_us busy_us)
        | None -> ()
      in
      let on_stall dur =
        (* [record_op] both observes the histogram and records a span;
           back-dating [t0] by the stall duration makes the span close
           to [dur] long without a second clock source. *)
        if obs_on && Int64.compare dur 0L > 0 then
          Obs.record_op t.obs ~hist:t.instr.Obs.h_stall ~op:Otrace.Stall
            ~table:t.tname
            ~t0:(Int64.sub (Clock.now t.clock) dur)
            ();
        match prof with
        | Some pr ->
            Mutexes.with_lock pr.pr_mutex (fun () ->
                pr.pr_stall_us <- Int64.add pr.pr_stall_us dur)
        | None -> ()
      in
      Pscan.stage pool ~now_us ~on_worker ~on_stall sources
  | _ -> (sources, fun () -> ())

let query_raw ?prof t (q : Query.t) =
  let plan0 = match prof with Some _ -> Clock.now t.clock | None -> 0L in
  let counters = Tablet.fresh_counters () in
  match Query.compile t.schema q with
  | None -> (empty_source, (fun () -> ()), ref 0, 0, 0, counters)
  | Some compiled ->
      let asc = q.Query.direction = Query.Asc in
      let scan =
        open_scan ?projection:q.Query.projection ~counters t ~compiled
          ~ts_min:q.Query.ts_min ~ts_max:q.Query.ts_max ~asc
      in
      let scanned = ref 0 in
      let staged, finish_stage =
        maybe_stage ?prof t ~has_disk:(scan.referenced <> []) scan.sources
      in
      (match prof with
      | Some pr -> pr.pr_plan_us <- Int64.sub (Clock.now t.clock) plan0
      | None -> ());
      let merged = Cursor.merge ~asc staged in
      let filtered =
        Cursor.filter_ts ~scanned ?ts_min:scan.eff_ts_min ?ts_max:q.Query.ts_max
          merged
      in
      let released = ref false in
      let release_once () =
        if not !released then begin
          released := true;
          (* Cancel and join in-flight producers before dropping the
             tablet refs they read through. *)
          finish_stage ();
          release t scan.referenced
        end
      in
      ( filtered,
        release_once,
        scanned,
        List.length scan.referenced,
        scan.considered - List.length scan.referenced,
        counters )

let note_pushdown_counters t (c : Tablet.scan_counters) =
  let fb = Atomic.get c.Tablet.sc_footer_blocks in
  let cd = Atomic.get c.Tablet.sc_cols_decoded in
  if fb > 0 || cd > 0 then
    Stats.note_pushdown t.stats ~footer_blocks:fb ~columns:cd

let query_iter t q =
  let t0, h0, m0 = obs_begin t in
  let src, release_once, scanned, tablets, _pruned, counters = query_raw t q in
  let src =
    match q.Query.limit with None -> src | Some n -> Cursor.take n src
  in
  let returned = ref 0 in
  let finished = ref false in
  fun () ->
    if !finished then None
    else begin
      match src () with
      | Some kv ->
          incr returned;
          Some kv
      | None ->
          finished := true;
          release_once ();
          note_pushdown_counters t counters;
          Stats.note_query t.stats ~scanned:!scanned ~returned:!returned;
          obs_end t ~hist:t.instr.Obs.h_query ~op:Otrace.Query ~t0 ~h0 ~m0
            ~scanned:!scanned ~returned:!returned ~tablets ();
          None
    end

type result = {
  rows : Value.t array list;
  more_available : bool;
  scanned : int;
  profile : Lt_obs.Profile.t option;
}

let query ?(profile = false) t (q : Query.t) =
  let t0, h0, m0 = obs_begin t in
  let prof = if profile then Some (prof_acc_create ()) else None in
  let pt0 = if profile then Clock.now t.clock else 0L in
  let ph0, pm0 = if profile then cache_counts t else (0, 0) in
  let src, release_once, scanned, tablets, pruned, counters =
    query_raw ?prof t q
  in
  let server_cap = t.config.Config.server_row_limit in
  let cap =
    match q.Query.limit with
    | None -> server_cap
    | Some l -> min l server_cap
  in
  let rec collect acc n =
    if n = 0 then (List.rev acc, src () <> None)
    else begin
      match src () with
      | None -> (List.rev acc, false)
      | Some (_, row) -> collect (row :: acc) (n - 1)
    end
  in
  let scan0 = if profile then Clock.now t.clock else 0L in
  let rows, more = collect [] cap in
  (* Joins in-flight producers, so worker busy totals are final. *)
  release_once ();
  let scanned = !scanned in
  note_pushdown_counters t counters;
  Stats.note_query t.stats ~scanned ~returned:(List.length rows);
  obs_end t ~hist:t.instr.Obs.h_query ~op:Otrace.Query ~t0 ~h0 ~m0 ~scanned
    ~returned:(List.length rows) ~tablets ();
  (* more_available signals only the server's own cap (§3.5): when the
     client asked for fewer rows than the server cap, hitting the client
     limit is not "more available" in the protocol sense. *)
  let more_available =
    more && (match q.Query.limit with None -> true | Some l -> l > server_cap)
  in
  let profile =
    match prof with
    | None -> None
    | Some pr ->
        let fin = Clock.now t.clock in
        let h1, m1 = cache_counts t in
        let scan_us, stall_us =
          Mutexes.with_lock pr.pr_mutex (fun () ->
              if pr.pr_staged then (pr.pr_scan_us, pr.pr_stall_us)
              else (Int64.sub fin scan0, 0L))
        in
        Some
          { Lt_obs.Profile.p_plan_us = pr.pr_plan_us;
            p_scan_us = scan_us;
            p_stall_us = stall_us;
            p_total_us = Int64.sub fin pt0;
            p_rows_scanned = scanned;
            p_rows_returned = List.length rows;
            p_tablets = tablets;
            p_tablets_pruned = pruned;
            (* Blooms serve only the [latest] point-lookup path (§3.4.5);
               a range scan never consults them. *)
            p_bloom_skips = 0;
            p_cache_hits = h1 - ph0;
            p_cache_misses = m1 - pm0;
            p_blocks_footer_answered =
              Atomic.get counters.Tablet.sc_footer_blocks;
            p_columns_decoded = Atomic.get counters.Tablet.sc_cols_decoded;
            p_shards = [] }
  in
  { rows; more_available; scanned; profile }

(* ------------------------------------------------------------------ *)
(* Aggregate pushdown                                                  *)
(* ------------------------------------------------------------------ *)

(* [query_agg t q ~specs] evaluates one aggregate row over every row
   matching [q]'s bounds. A selected disk tablet whose key span is
   disjoint from every other selected source's span can never have a
   row shadowed by the merge cursor's dedup, so it is folded directly
   with {!Tablet.fold_aggs} — columnar blocks wholly inside the bounds
   are answered from footer stats without being read. Overlapping
   sources (and memtables) run through the ordinary merged cursor into
   the same accumulators. Always sequential — never staged on the
   worker pool — so results are identical at any [query_domains]. *)
let query_agg ?(profile = false) t (q : Query.t) ~specs =
  let t0, h0, m0 = obs_begin t in
  let pt0 = if profile then Clock.now t.clock else 0L in
  let ph0, pm0 = if profile then cache_counts t else (0, 0) in
  let counters = Tablet.fresh_counters () in
  let accs = Array.map (fun _ -> Agg.fresh_acc ()) specs in
  let scanned = ref 0 in
  let feed_row row =
    Array.iteri
      (fun i s ->
        let v =
          match s.Agg.a_col with
          | Some c when c < Array.length row -> Some row.(c)
          | _ -> None
        in
        Agg.feed accs.(i) v)
      specs
  in
  let needed =
    Array.to_list specs
    |> List.filter_map (fun s -> s.Agg.a_col)
    |> List.sort_uniq Int.compare
  in
  let tablets, pruned =
    match Query.compile t.schema q with
    | None -> (0, 0)
    | Some compiled ->
        let mem_sources, mem_spans, readers, eff_ts_min, considered =
          Mutexes.with_lock t.state (fun () ->
              let cutoff = ttl_cutoff_locked t in
              let eff_ts_min =
                match (q.Query.ts_min, cutoff) with
                | None, c -> c
                | (Some _ as m), None -> m
                | Some m, Some c -> Some (max m c)
              in
              let ts_overlaps ~lo ~hi =
                (match eff_ts_min with None -> true | Some b -> hi >= b)
                &&
                match q.Query.ts_max with
                | None -> true
                | Some b -> lo <= b
              in
              let key_overlaps ~min_key ~max_key =
                String.compare compiled.Query.lo max_key <= 0
                &&
                match compiled.Query.hi with
                | None -> true
                | Some h -> String.compare h min_key > 0
              in
              let mems =
                List.filter
                  (fun m ->
                    match Memtable.ts_range m with
                    | Some (lo, hi) -> ts_overlaps ~lo ~hi
                    | None -> false)
                  (t.filling @ t.frozen)
              in
              let mem_sources =
                List.map
                  (fun m ->
                    let snap = Memtable.snapshot m in
                    let it =
                      Avl.iter_asc ~lo:compiled.Query.lo ?hi:compiled.Query.hi
                        snap
                    in
                    (Memtable.id m, fun () -> Avl.next it))
                  mems
              in
              let mem_spans =
                List.filter_map
                  (fun m ->
                    match (Memtable.min_key m, Memtable.max_key m) with
                    | Some a, Some b -> Some (a, b)
                    | _ -> None)
                  mems
              in
              let selected =
                List.filter
                  (fun dt ->
                    let m = dt.meta in
                    ts_overlaps ~lo:m.Descriptor.min_ts
                      ~hi:m.Descriptor.max_ts
                    && key_overlaps ~min_key:m.Descriptor.min_key
                         ~max_key:m.Descriptor.max_key)
                  t.disk
              in
              List.iter (fun dt -> dt.refs <- dt.refs + 1) selected;
              let readers =
                List.map (fun dt -> (dt, get_reader_locked t dt)) selected
              in
              (mem_sources, mem_spans, readers, eff_ts_min,
               List.length t.disk))
        in
        Fun.protect
          ~finally:(fun () -> release t (List.map fst readers))
          (fun () ->
            let arr = Array.of_list readers in
            let n = Array.length arr in
            let span i =
              let dt, _ = arr.(i) in
              (dt.meta.Descriptor.min_key, dt.meta.Descriptor.max_key)
            in
            let disjoint (a_lo, a_hi) (b_lo, b_hi) =
              String.compare a_hi b_lo < 0 || String.compare b_hi a_lo < 0
            in
            let pushable i =
              let s = span i in
              List.for_all (disjoint s) mem_spans
              &&
              let ok = ref true in
              for j = 0 to n - 1 do
                if j <> i && not (disjoint s (span j)) then ok := false
              done;
              !ok
            in
            let ts_lo =
              match eff_ts_min with None -> Int64.min_int | Some v -> v
            in
            let ts_hi =
              match q.Query.ts_max with None -> Int64.max_int | Some v -> v
            in
            let residue = ref [] in
            for i = n - 1 downto 0 do
              let dt, r = arr.(i) in
              if pushable i then
                Tablet.fold_aggs r ~counters ~lo:(Some compiled.Query.lo)
                  ~hi:compiled.Query.hi ~ts_min:ts_lo ~ts_max:ts_hi ~specs
                  ~accs ()
              else
                residue :=
                  ( dt.meta.Descriptor.id,
                    Tablet.iter r ~asc:true ~lo:compiled.Query.lo
                      ?hi:compiled.Query.hi ~projection:needed ~counters () )
                  :: !residue
            done;
            (match mem_sources @ !residue with
            | [] -> ()
            | sources ->
                let src =
                  Cursor.filter_ts ~scanned ?ts_min:eff_ts_min
                    ?ts_max:q.Query.ts_max
                    (Cursor.merge ~asc:true sources)
                in
                Cursor.fold (fun () (_, row) -> feed_row row) () src);
            (List.length readers, considered - List.length readers))
  in
  note_pushdown_counters t counters;
  Stats.note_query t.stats ~scanned:!scanned ~returned:1;
  obs_end t ~hist:t.instr.Obs.h_query ~op:Otrace.Query ~t0 ~h0 ~m0
    ~scanned:!scanned ~returned:1 ~tablets ();
  let results = Array.mapi (fun i s -> Agg.result s.Agg.a_fn accs.(i)) specs in
  let prof =
    if not profile then None
    else begin
      let fin = Clock.now t.clock in
      let h1, m1 = cache_counts t in
      Some
        { Lt_obs.Profile.p_plan_us = 0L;
          p_scan_us = Int64.sub fin pt0;
          p_stall_us = 0L;
          p_total_us = Int64.sub fin pt0;
          p_rows_scanned = !scanned;
          p_rows_returned = 1;
          p_tablets = tablets;
          p_tablets_pruned = pruned;
          p_bloom_skips = 0;
          p_cache_hits = h1 - ph0;
          p_cache_misses = m1 - pm0;
          p_blocks_footer_answered =
            Atomic.get counters.Tablet.sc_footer_blocks;
          p_columns_decoded = Atomic.get counters.Tablet.sc_cols_decoded;
          p_shards = [] }
    end
  in
  (results, prof)

(* ------------------------------------------------------------------ *)
(* Latest row for a key prefix (§3.4.5)                                *)
(* ------------------------------------------------------------------ *)

type span_item =
  | In_mem of Memtable.t * int64 * int64
  | On_disk of disk_tablet

let item_span = function
  | In_mem (_, lo, hi) -> (lo, hi)
  | On_disk dt -> (dt.meta.Descriptor.min_ts, dt.meta.Descriptor.max_ts)

let latest t prefix_values =
  let t0, h0, m0 = obs_begin t in
  let prefix = Key_codec.encode_prefix t.schema prefix_values in
  let hi = Key_codec.prefix_succ prefix in
  let full_prefix =
    List.length prefix_values = Array.length (Schema.pkey t.schema) - 1
  in
  let items, cutoff =
    Mutexes.with_lock t.state (fun () ->
        let mem_items =
          List.filter_map
            (fun m ->
              match Memtable.ts_range m with
              | Some (lo, hi) -> Some (In_mem (m, lo, hi))
              | None -> None)
            (t.filling @ t.frozen)
        in
        let disk_items = List.map (fun dt -> On_disk dt) t.disk in
        let items =
          List.sort
            (fun a b ->
              let la, _ = item_span a and lb, _ = item_span b in
              Int64.compare la lb)
            (mem_items @ disk_items)
        in
        List.iter
          (function On_disk dt -> dt.refs <- dt.refs + 1 | In_mem _ -> ())
          items;
        (items, ttl_cutoff_locked t))
  in
  let refs =
    List.filter_map (function On_disk dt -> Some dt | In_mem _ -> None) items
  in
  Fun.protect
    ~finally:(fun () -> release t refs)
    (fun () ->
      (* Group items whose timespans overlap; within a group timespans
         cannot be ordered, so the group is searched as one unit. *)
      let groups =
        List.fold_left
          (fun groups item ->
            let lo, hi = item_span item in
            match groups with
            | (ghi, members) :: rest when lo <= ghi ->
                (max ghi hi, item :: members) :: rest
            | _ -> (hi, [ item ]) :: groups)
          [] items
      in
      (* [groups] is now newest-first. *)
      let scanned = ref 0 in
      let search_group members =
        let sources =
          List.filter_map
            (fun item ->
              match item with
              | In_mem (m, _, _) ->
                  let it = Avl.iter_desc ~lo:prefix ?hi (Memtable.snapshot m) in
                  Some (Memtable.id m, fun () -> Avl.next it)
              | On_disk dt ->
                  if Tablet.may_contain_prefix
                       (Mutexes.with_lock t.state (fun () -> get_reader_locked t dt))
                       prefix
                  then
                    let r = Mutexes.with_lock t.state (fun () -> get_reader_locked t dt) in
                    Some
                      (dt.meta.Descriptor.id, Tablet.iter r ~asc:false ~lo:prefix ?hi ())
                  else None)
            members
        in
        if sources = [] then None
        else begin
          let has_disk =
            List.exists
              (function On_disk _ -> true | In_mem _ -> false)
              members
          in
          let staged, finish_stage = maybe_stage t ~has_disk sources in
          (* The inner protect joins producers before the outer protect
             releases the tablet refs they read through; a full-prefix
             hit on the first row cancels the rest of the group's
             workers. *)
          Fun.protect ~finally:finish_stage (fun () ->
              let src =
                Cursor.filter_ts ~scanned ?ts_min:cutoff
                  (Cursor.merge ~asc:false staged)
              in
              if full_prefix then
                (* Keys sharing all non-ts columns differ only in ts, and
                   ts is the last key column, so descending key order is
                   descending ts order: the first hit is the latest. *)
                Option.map snd (src ())
              else begin
                let best = ref None in
                let rec go () =
                  match src () with
                  | None -> ()
                  | Some (key, row) ->
                      let ts = Key_codec.ts_of_key key in
                      (match !best with
                      | Some (bts, _) when bts >= ts -> ()
                      | _ -> best := Some (ts, row));
                      go ()
                in
                go ();
                Option.map snd !best
              end)
        end
      in
      let rec try_groups = function
        | [] -> None
        | (_, members) :: rest -> (
            match search_group members with
            | Some row -> Some row
            | None -> try_groups rest)
      in
      let result = try_groups groups in
      Stats.note_query t.stats ~scanned:!scanned
        ~returned:(if result = None then 0 else 1);
      obs_end t ~hist:t.instr.Obs.h_latest ~op:Otrace.Latest ~t0 ~h0 ~m0
        ~scanned:!scanned
        ~returned:(if result = None then 0 else 1)
        ~tablets:(List.length refs) ();
      result)

(* ------------------------------------------------------------------ *)
(* Merging (§3.4.1, §3.4.2)                                            *)
(* ------------------------------------------------------------------ *)

(* Layout policy: a merge (or layout rewrite) whose newest input row has
   aged past [columnar_age] writes its output column-major; anything
   younger stays row-major, so fresh flushes are never columnar and a
   table mixes layouts freely. [Int64.max_int] disables the rewrite
   entirely. The same predicate drives [Merge_policy.input.stale_layout],
   so a rewrite provably flips its own trigger off. *)
let columnar_output t ~now ~max_ts =
  let age = t.config.Config.columnar_age in
  age <> Int64.max_int && Int64.sub now max_ts >= age

(* Advance rollover bookkeeping and pick a merge candidate. Must be
   called with [state] held. *)
let merge_plan_locked t =
  let n = now t in
  List.iter
    (fun dt ->
      let cls = Period.classify ~now:n dt.meta.Descriptor.min_ts in
      if cls <> dt.last_cls then begin
        dt.last_cls <- cls;
        if t.config.Config.rollover_spread > 0.0 then begin
          let spread =
            Xorshift.float t.rng *. t.config.Config.rollover_spread
            *. Int64.to_float (Period.class_length cls)
          in
          let until = Int64.add n (Int64.of_float spread) in
          if until > dt.eligible_at then dt.eligible_at <- until
        end
      end)
    t.disk;
  let inputs =
    List.map
      (fun dt ->
        Merge_policy.
          {
            id = dt.meta.Descriptor.id;
            size = dt.meta.Descriptor.size;
            min_ts = dt.meta.Descriptor.min_ts;
            max_ts = dt.meta.Descriptor.max_ts;
            eligible_at = dt.eligible_at;
            stale_layout =
              (not dt.meta.Descriptor.columnar)
              && columnar_output t ~now:n ~max_ts:dt.meta.Descriptor.max_ts;
          })
      t.disk
  in
  Merge_policy.plan ~now:n ~max_tablet_size:t.config.Config.max_tablet_size
    inputs

let merge_step_unlocked t =
  let plan =
    Mutexes.with_lock t.state (fun () ->
        match merge_plan_locked t with
        | None -> None
        | Some plan ->
            let sources =
              List.filter_map
                (fun id ->
                  List.find_opt (fun dt -> dt.meta.Descriptor.id = id) t.disk)
                plan.Merge_policy.ids
            in
            List.iter (fun dt -> dt.refs <- dt.refs + 1) sources;
            let readers = List.map (get_reader_locked t) sources in
            let new_id = t.next_id in
            t.next_id <- t.next_id + 1;
            Some (sources, readers, new_id, ttl_cutoff_locked t))
  in
  match plan with
  | None -> false
  | Some (sources, readers, new_id, cutoff) ->
      let t0, h0, m0 = obs_begin t in
      let ok = ref false in
      Fun.protect
        ~finally:(fun () -> release t sources)
        (fun () ->
          let schema = Mutexes.with_lock t.state (fun () -> t.schema) in
          let iters =
            List.map2
              (fun dt r -> (dt.meta.Descriptor.id, Tablet.iter r ~asc:true ()))
              sources readers
          in
          let scanned = ref 0 in
          let src =
            Cursor.filter_ts ~scanned ?ts_min:cutoff
              (Cursor.merge ~asc:true iters)
          in
          let file = Descriptor.tablet_file new_id in
          let expected_rows =
            List.fold_left
              (fun acc dt -> acc + dt.meta.Descriptor.row_count)
              0 sources
          in
          let out_max_ts =
            List.fold_left
              (fun acc dt -> max acc dt.meta.Descriptor.max_ts)
              Int64.min_int sources
          in
          let layout =
            if columnar_output t ~now:(now t) ~max_ts:out_max_ts then
              Block.Col_major
            else Block.Row_major
          in
          let writer =
            Tablet.writer t.vfs ~path:(tablet_path t file) ~schema
              ~block_size:t.config.Config.block_size
              ~bloom_bits_per_key:t.config.Config.bloom_bits_per_key
              ~expected_rows ~layout ()
          in
          let rows = ref 0 in
          let new_meta =
            (* Abandon the partial output on any write failure; the
               sources are untouched, so the merge simply retries later. *)
            try
              let rec copy () =
                match src () with
                | None -> ()
                | Some (key, row) ->
                    incr rows;
                    let _, prefixes =
                      Key_codec.encode_key_with_prefixes schema row
                    in
                    Tablet.add_row writer ~key ~key_prefixes:prefixes
                      ~ts:(Key_codec.ts_of_key key) row;
                    copy ()
              in
              copy ();
              if !rows = 0 then begin
                (* Everything in the inputs had expired. *)
                Tablet.abandon writer;
                None
              end
              else begin
                let s = Tablet.finish writer in
                Some
                  Descriptor.
                    {
                      id = new_id;
                      file;
                      min_ts = s.Tablet.min_ts;
                      max_ts = s.Tablet.max_ts;
                      min_key = s.Tablet.min_key;
                      max_key = s.Tablet.max_key;
                      row_count = s.Tablet.row_count;
                      size = s.Tablet.size;
                      columnar = s.Tablet.columnar;
                    }
              end
            with e ->
              Tablet.abandon writer;
              raise e
          in
          Mutexes.with_lock t.state (fun () ->
              let n = now t in
              let source_ids =
                List.map (fun dt -> dt.meta.Descriptor.id) sources
              in
              let saved_disk = t.disk in
              t.disk <-
                List.filter
                  (fun dt -> not (List.mem dt.meta.Descriptor.id source_ids))
                  t.disk;
              (match new_meta with
              | None -> ()
              | Some meta ->
                  t.disk <-
                    List.sort
                      (fun a b ->
                        match
                          Int64.compare a.meta.Descriptor.min_ts
                            b.meta.Descriptor.min_ts
                        with
                        | 0 -> Int.compare a.meta.Descriptor.id b.meta.Descriptor.id
                        | c -> c)
                      ({
                         meta;
                         reader = None;
                         refs = 0;
                         doomed = false;
                         last_cls = Period.classify ~now:n meta.Descriptor.min_ts;
                         eligible_at = Int64.add n t.config.Config.merge_delay;
                       }
                      :: t.disk));
              (* Persist before dooming the sources: if the save fails
                 they must stay live, or the deferred destroy triggered
                 by [release] would delete files the durable descriptor
                 still references. *)
              (match save_descriptor_locked t with
              | () -> ()
              | exception e ->
                  t.disk <- saved_disk;
                  (match new_meta with
                  | Some meta ->
                      t.doomed_paths <-
                        tablet_path t meta.Descriptor.file :: t.doomed_paths
                  | None -> ());
                  raise e);
              List.iter (fun dt -> dt.doomed <- true) sources;
              let bytes_in =
                List.fold_left
                  (fun acc dt -> acc + dt.meta.Descriptor.size)
                  0 sources
              in
              let bytes_out =
                match new_meta with None -> 0 | Some m -> m.Descriptor.size
              in
              Stats.note_merge t.stats ~bytes_in ~bytes_out);
          obs_end t ~hist:t.instr.Obs.h_merge ~op:Otrace.Merge ~t0 ~h0 ~m0
            ~scanned:!scanned ~returned:!rows
            ~tablets:(List.length sources) ();
          ok := true);
      !ok

let merge_step t =
  Fun.protect
    ~finally:(fun () -> drain_doomed t)
    (fun () -> Mutexes.with_lock t.maint_lock (fun () -> merge_step_unlocked t))

(* ------------------------------------------------------------------ *)
(* Expiry (§3.3)                                                       *)
(* ------------------------------------------------------------------ *)

let expire_unlocked t =
  Mutexes.with_lock t.state (fun () ->
      match ttl_cutoff_locked t with
      | None -> 0
      | Some cutoff ->
          let expired, live =
            List.partition
              (fun dt -> dt.meta.Descriptor.max_ts < cutoff)
              t.disk
          in
          if expired = [] then 0
          else begin
            let saved_disk = t.disk in
            t.disk <- live;
            (* Persist before destroying: a failed save must leave the
               expired tablets live, not delete files the durable
               descriptor still references. *)
            (match save_descriptor_locked t with
            | () -> ()
            | exception e ->
                t.disk <- saved_disk;
                raise e);
            List.iter
              (fun dt ->
                dt.doomed <- true;
                if dt.refs = 0 then destroy_tablet_locked t dt)
              expired;
            let n = List.length expired in
            Stats.note_expired t.stats ~tablets:n;
            n
          end)

let expire t =
  Fun.protect
    ~finally:(fun () -> drain_doomed t)
    (fun () -> Mutexes.with_lock t.maint_lock (fun () -> expire_unlocked t))

(* ------------------------------------------------------------------ *)
(* Bulk delete (§7's planned privacy-compliance feature)               *)
(* ------------------------------------------------------------------ *)

let delete_prefix t prefix_values =
  let lo = Key_codec.encode_prefix t.schema prefix_values in
  let hi_opt = Key_codec.prefix_succ lo in
  let in_range key =
    String.compare key lo >= 0
    && match hi_opt with None -> true | Some hi -> String.compare key hi < 0
  in
  Fun.protect ~finally:(fun () -> drain_doomed t) @@ fun () ->
  Mutexes.with_lock t.writer_lock (fun () ->
      Mutexes.with_lock t.maint_lock (fun () ->
          let deleted = ref 0 in
          (* Memtables: rebuild without the range. *)
          Mutexes.with_lock t.state (fun () ->
              let filter_mt mt =
                let fresh =
                  Memtable.create ~id:(Memtable.id mt)
                    ~period:(Memtable.period mt)
                    ~created_at:(Memtable.created_at mt)
                in
                let it = Avl.iter_asc (Memtable.snapshot mt) in
                let rec go () =
                  match Avl.next it with
                  | None -> ()
                  | Some (key, row) ->
                      if in_range key then incr deleted
                      else begin
                        (match
                           Memtable.insert fresh ~key
                             ~ts:(Key_codec.ts_of_key key) row
                         with
                        | `Ok ->
                            Memtable.add_bytes fresh
                              (Row_codec.stored_size t.schema row)
                        | `Duplicate -> assert false);
                      end;
                      go ()
                in
                go ();
                fresh
              in
              let drop_empty mts =
                List.filter_map
                  (fun mt ->
                    let fresh = filter_mt mt in
                    if Memtable.row_count fresh = 0 then None else Some fresh)
                  mts
              in
              t.filling <- drop_empty t.filling;
              t.frozen <- drop_empty t.frozen;
              let live_ids =
                List.map Memtable.id (t.filling @ t.frozen)
              in
              (match t.last_insert_tablet with
              | Some id when not (List.mem id live_ids) ->
                  t.last_insert_tablet <- None
              | _ -> ()));
          (* Disk tablets overlapping the range. *)
          let victims =
            Mutexes.with_lock t.state (fun () ->
                let vs =
                  List.filter
                    (fun dt ->
                      let m = dt.meta in
                      String.compare m.Descriptor.max_key lo >= 0
                      && (match hi_opt with
                         | None -> true
                         | Some hi -> String.compare m.Descriptor.min_key hi < 0))
                    t.disk
                in
                List.iter (fun dt -> dt.refs <- dt.refs + 1) vs;
                vs)
          in
          let replacements =
            (* On a failure mid-rewrite, drop the refs taken above so the
               victims don't leak; files of replacements written so far
               die unreferenced and are swept at the next open. *)
            try
              List.map
                (fun dt ->
                let m = dt.meta in
                let fully_inside =
                  String.compare m.Descriptor.min_key lo >= 0
                  && (match hi_opt with
                     | None -> true
                     | Some hi -> String.compare m.Descriptor.max_key hi < 0)
                in
                if fully_inside then begin
                  deleted := !deleted + m.Descriptor.row_count;
                  (dt, None)
                end
                else begin
                  (* Straddling tablet: rewrite it without the range. *)
                  let reader, schema, new_id =
                    Mutexes.with_lock t.state (fun () ->
                        let r = get_reader_locked t dt in
                        let id = t.next_id in
                        t.next_id <- t.next_id + 1;
                        (r, t.schema, id))
                  in
                  let file = Descriptor.tablet_file new_id in
                  let layout =
                    if
                      columnar_output t ~now:(now t)
                        ~max_ts:m.Descriptor.max_ts
                    then Block.Col_major
                    else Block.Row_major
                  in
                  let writer =
                    Tablet.writer t.vfs ~path:(tablet_path t file) ~schema
                      ~block_size:t.config.Config.block_size
                      ~bloom_bits_per_key:t.config.Config.bloom_bits_per_key
                      ~expected_rows:m.Descriptor.row_count ~layout ()
                  in
                  let it = Tablet.iter reader ~asc:true () in
                  let kept = ref 0 in
                  (try
                     let rec copy () =
                       match it () with
                       | None -> ()
                       | Some (key, row) ->
                           if in_range key then incr deleted
                           else begin
                             incr kept;
                             let _, prefixes =
                               Key_codec.encode_key_with_prefixes schema row
                             in
                             Tablet.add_row writer ~key ~key_prefixes:prefixes
                               ~ts:(Key_codec.ts_of_key key) row
                           end;
                           copy ()
                     in
                     copy ()
                   with e ->
                     Tablet.abandon writer;
                     raise e);
                  if !kept = 0 then begin
                    Tablet.abandon writer;
                    (dt, None)
                  end
                  else begin
                    let s =
                      try Tablet.finish writer
                      with e ->
                        Tablet.abandon writer;
                        raise e
                    in
                    ( dt,
                      Some
                        Descriptor.
                          {
                            id = new_id;
                            file;
                            min_ts = s.Tablet.min_ts;
                            max_ts = s.Tablet.max_ts;
                            min_key = s.Tablet.min_key;
                            max_key = s.Tablet.max_key;
                            row_count = s.Tablet.row_count;
                            size = s.Tablet.size;
                            columnar = s.Tablet.columnar;
                          } )
                  end
                end)
                victims
            with e ->
              Mutexes.with_lock t.state (fun () -> release_locked t victims);
              raise e
          in
          (* Single atomic commit: persist first, doom and release the
             victims only once the new descriptor is durable. On a
             failed save the victims stay live and the replacement files
             die unreferenced (swept at next open). *)
          Mutexes.with_lock t.state (fun () ->
              let n = now t in
              let victim_ids =
                List.map (fun (dt, _) -> dt.meta.Descriptor.id) replacements
              in
              let saved_disk = t.disk in
              t.disk <-
                List.filter
                  (fun dt -> not (List.mem dt.meta.Descriptor.id victim_ids))
                  t.disk;
              List.iter
                (fun (_, repl) ->
                  match repl with
                  | None -> ()
                  | Some meta ->
                      t.disk <-
                        {
                          meta;
                          reader = None;
                          refs = 0;
                          doomed = false;
                          last_cls = Period.classify ~now:n meta.Descriptor.min_ts;
                          eligible_at = Int64.add n t.config.Config.merge_delay;
                        }
                        :: t.disk)
                replacements;
              t.disk <-
                List.sort
                  (fun a b ->
                    match
                      Int64.compare a.meta.Descriptor.min_ts b.meta.Descriptor.min_ts
                    with
                    | 0 -> Int.compare a.meta.Descriptor.id b.meta.Descriptor.id
                    | c -> c)
                  t.disk;
              (match save_descriptor_locked t with
              | () -> ()
              | exception e ->
                  t.disk <- saved_disk;
                  List.iter
                    (fun (_, repl) ->
                      match repl with
                      | None -> ()
                      | Some meta ->
                          t.doomed_paths <-
                            tablet_path t meta.Descriptor.file :: t.doomed_paths)
                    replacements;
                  release_locked t (List.map fst replacements);
                  raise e);
              List.iter (fun (dt, _) -> dt.doomed <- true) replacements;
              release_locked t (List.map fst replacements));
          !deleted))

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let maintenance t =
  Mutexes.with_lock t.writer_lock (fun () ->
      let n = now t in
      Mutexes.with_lock t.state (fun () ->
          List.iter
            (fun m ->
              if Int64.sub n (Memtable.created_at m) >= t.config.Config.flush_age
              then freeze_locked t m)
            t.filling);
      flush_frozen_backlog ~swallow:true t ~limit:1);
  Mutexes.with_lock t.maint_lock (fun () ->
      while merge_step_unlocked t do
        ()
      done;
      ignore (expire_unlocked t));
  drain_doomed t

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let tablet_count t = Mutexes.with_lock t.state (fun () -> List.length t.disk)

let memtable_count t =
  Mutexes.with_lock t.state (fun () -> List.length t.filling + List.length t.frozen)

let tablets t = Mutexes.with_lock t.state (fun () -> List.map (fun dt -> dt.meta) t.disk)

let disk_size t =
  Mutexes.with_lock t.state (fun () ->
      List.fold_left (fun acc dt -> acc + dt.meta.Descriptor.size) 0 t.disk)
