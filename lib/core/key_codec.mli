(** Order-preserving primary-key encoding.

    LittleTable sorts rows within tablets by primary key and answers every
    query as an ordered scan over a key range (§3.1). We encode each key
    as a byte string such that

    - byte-wise [String.compare] on encodings equals the column-by-column
      value order, and
    - the encoding is {e prefix-preserving}: the encoding of key columns
      [v1..vk] is a byte prefix of any full key beginning with those
      values, so a key-prefix query is exactly a byte-prefix range.

    Per-type forms: integers and timestamps are sign-flipped big-endian;
    doubles use the IEEE total-order transform; strings and blobs escape
    0x00/0x01 (as 0x01 0x01 / 0x01 0x02) and end with a 0x00 terminator,
    which sorts below every escaped byte.

    Because the timestamp is the last key column, the final 8 bytes of any
    full encoded key are its timestamp — {!ts_of_key} exploits this to
    filter scans without decoding rows. *)

(** [encode_value buf v] appends the order-preserving form of [v]. *)
val encode_value : Buffer.t -> Value.t -> unit

(** [decode_value ctype cur] inverts {!encode_value}. *)
val decode_value : Value.ctype -> Lt_util.Binio.cursor -> Value.t

(** Exact byte length {!encode_value} would produce, allocation-free. *)
val encoded_size : Value.t -> int

(** Exact byte length of {!encode_key}, allocation-free. *)
val key_size : Schema.t -> Value.t array -> int

(** Full primary key of a validated row. *)
val encode_key : Schema.t -> Value.t array -> string

(** [encode_key_with_prefixes schema row] is the full encoded key paired
    with every proper column-boundary prefix (1 to k-1 key columns) —
    the strings inserted into a tablet's Bloom filter so that prefix
    membership tests work (§3.4.5). *)
val encode_key_with_prefixes : Schema.t -> Value.t array -> string * string list

(** [encode_prefix schema vs] encodes the first [List.length vs] key
    columns. @raise Schema.Invalid if the values do not match the leading
    key column types. *)
val encode_prefix : Schema.t -> Value.t list -> string

(** Key-column values of an encoded full key, in key order. *)
val decode_key : Schema.t -> string -> Value.t array

(** Timestamp (microseconds) carried in the last 8 bytes of a full key. *)
val ts_of_key : string -> int64

(** [prefix_succ p] is the smallest byte string greater than every string
    having [p] as a prefix, or [None] when no such string exists (all
    0xff). Used to turn prefix bounds into half-open byte ranges. *)
val prefix_succ : string -> string option
