type input = {
  id : int;
  size : int;
  min_ts : int64;
  max_ts : int64;
  eligible_at : int64;
  stale_layout : bool;
}

type plan = { ids : int list }

let plan_sizes ~max_tablet_size sizes =
  let n = Array.length sizes in
  let rec seed i =
    if i + 1 >= n then None
    else if sizes.(i) <= 2 * sizes.(i + 1) then Some i
    else seed (i + 1)
  in
  match seed 0 with
  | None -> None
  | Some i ->
      (* Extend the pair rightward while the merged tablet stays within
         the size cap. The appendix notes the bounds hold "even if
         LittleTable merges any number of tablets that immediately follow
         t_{i+1}, regardless of their sizes". *)
      let total = ref (sizes.(i) + sizes.(i + 1)) in
      let j = ref (i + 1) in
      while !j + 1 < n && !total + sizes.(!j + 1) <= max_tablet_size do
        incr j;
        total := !total + sizes.(!j)
      done;
      Some (i, !j - i + 1)

let plan ~now ~max_tablet_size inputs =
  let sorted =
    List.sort
      (fun a b ->
        match Int64.compare a.min_ts b.min_ts with
        | 0 -> Int.compare a.id b.id
        | c -> c)
      inputs
  in
  (* Split into maximal runs of consecutive, eligible tablets whose data
     falls in the same concrete time period (the same 4-hour span, day,
     or week); merging never crosses periods (§3.4.2). A tablet that is
     ineligible (recently written, or awaiting its rollover delay) breaks
     the run so that merges never jump over it and reorder timespans. *)
  let groups = ref [] and current = ref [] and current_bin = ref None in
  let flush_current () =
    (match !current with [] -> () | run -> groups := List.rev run :: !groups);
    current := [];
    current_bin := None
  in
  List.iter
    (fun t ->
      let bin = Period.bin ~now t.min_ts in
      if t.eligible_at > now then flush_current ()
      else if !current_bin = Some bin then current := t :: !current
      else begin
        flush_current ();
        current := [ t ];
        current_bin := Some bin
      end)
    sorted;
  flush_current ();
  let groups = List.rev !groups in
  let rec try_groups = function
    | [] -> None
    | group :: rest -> (
        let arr = Array.of_list group in
        let sizes = Array.map (fun t -> t.size) arr in
        match plan_sizes ~max_tablet_size sizes with
        | Some (start, len) ->
            Some { ids = List.init len (fun k -> arr.(start + k).id) }
        | None -> try_groups rest)
  in
  match try_groups groups with
  | Some _ as p -> p
  | None ->
      (* Size fixpoint. If some eligible tablet's data has aged past the
         layout threshold but it is still row-major, rewrite it alone
         (oldest first) so old timespans converge to column-major even
         when no size-rule merge is due. The rewrite flips [stale_layout]
         off, so this converges rather than looping. *)
      let stale =
        List.filter (fun t -> t.stale_layout && t.eligible_at <= now) sorted
      in
      (match stale with [] -> None | t :: _ -> Some { ids = [ t.id ] })
