open Lt_util

type column = { name : string; ctype : Value.ctype; default : Value.t }

type t = { columns : column array; pkey : int array; version : int }

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let ts_column_name = "ts"

let validate columns pkey =
  if Array.length columns = 0 then invalid "schema has no columns";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      if c.name = "" then invalid "empty column name";
      if Hashtbl.mem seen c.name then invalid "duplicate column %S" c.name;
      Hashtbl.add seen c.name ();
      if not (Value.matches c.ctype c.default) then
        invalid "column %S: default %s does not match type %s" c.name
          (Value.to_string c.default)
          (Value.type_name c.ctype))
    columns;
  if Array.length pkey = 0 then invalid "empty primary key";
  let kseen = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      if i < 0 || i >= Array.length columns then invalid "bad key index";
      if Hashtbl.mem kseen i then invalid "duplicate key column %S" columns.(i).name;
      Hashtbl.add kseen i ())
    pkey;
  let last = columns.(pkey.(Array.length pkey - 1)) in
  if last.name <> ts_column_name || last.ctype <> Value.T_timestamp then
    invalid "the last primary-key column must be a timestamp named %S"
      ts_column_name

let create ~columns ~pkey =
  let columns = Array.of_list columns in
  let index_of name =
    let rec go i =
      if i >= Array.length columns then invalid "unknown key column %S" name
      else if columns.(i).name = name then i
      else go (i + 1)
    in
    go 0
  in
  let pkey = Array.of_list (List.map index_of pkey) in
  validate columns pkey;
  { columns; pkey; version = 0 }

let columns t = t.columns

let pkey t = t.pkey

let ts_index t = t.pkey.(Array.length t.pkey - 1)

let version t = t.version

let column_count t = Array.length t.columns

let find_column t name =
  let rec go i =
    if i >= Array.length t.columns then None
    else if t.columns.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let pkey_names t = Array.to_list (Array.map (fun i -> t.columns.(i).name) t.pkey)

let is_pkey t i = Array.exists (fun j -> j = i) t.pkey

let validate_row t row =
  if Array.length row <> Array.length t.columns then
    invalid "row has %d values, schema has %d columns" (Array.length row)
      (Array.length t.columns);
  Array.iteri
    (fun i v ->
      if not (Value.matches t.columns.(i).ctype v) then
        invalid "column %S: value %s does not match type %s" t.columns.(i).name
          (Value.to_string v)
          (Value.type_name t.columns.(i).ctype))
    row

let row_ts t row =
  match row.(ts_index t) with
  | Value.Timestamp ts -> ts
  | v -> invalid "timestamp column holds %s" (Value.to_string v)

let add_column t col =
  if find_column t col.name <> None then invalid "duplicate column %S" col.name;
  if not (Value.matches col.ctype col.default) then
    invalid "column %S: default/type mismatch" col.name;
  {
    t with
    columns = Array.append t.columns [| col |];
    version = t.version + 1;
  }

let widen_column t name =
  match find_column t name with
  | None -> invalid "unknown column %S" name
  | Some i ->
      if t.columns.(i).ctype <> Value.T_int32 then
        invalid "column %S is not int32" name;
      let columns = Array.copy t.columns in
      let default =
        match Value.widen ~from:Value.T_int32 ~into:Value.T_int64 t.columns.(i).default with
        | Some v -> v
        | None -> assert false
      in
      columns.(i) <- { t.columns.(i) with ctype = Value.T_int64; default };
      { t with columns; version = t.version + 1 }

let translate_row ~from ~into row =
  if Array.length row <> Array.length from.columns then
    invalid "translate_row: row does not match source schema";
  Array.init (Array.length into.columns) (fun i ->
      let col = into.columns.(i) in
      if i < Array.length from.columns then begin
        let src = from.columns.(i) in
        if src.name <> col.name then
          invalid "translate_row: column %d renamed %S -> %S" i src.name col.name;
        match Value.widen ~from:src.ctype ~into:col.ctype row.(i) with
        | Some v -> v
        | None ->
            invalid "translate_row: column %S cannot go from %s to %s" col.name
              (Value.type_name src.ctype) (Value.type_name col.ctype)
      end
      else col.default)

let equal a b =
  a.version = b.version && a.pkey = b.pkey
  && Array.length a.columns = Array.length b.columns
  && Array.for_all2
       (fun x y ->
         x.name = y.name && x.ctype = y.ctype && Value.equal x.default y.default)
       a.columns b.columns

let pp ppf t =
  Format.fprintf ppf "@[<v>schema v%d:@," t.version;
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "  %s %s default %s%s@," c.name
        (Value.type_name c.ctype)
        (Value.to_string c.default)
        (if is_pkey t i then " [key]" else ""))
    t.columns;
  Format.fprintf ppf "  primary key (%s)@]" (String.concat ", " (pkey_names t))

let ctype_tag = function
  | Value.T_int32 -> 0
  | Value.T_int64 -> 1
  | Value.T_double -> 2
  | Value.T_timestamp -> 3
  | Value.T_string -> 4
  | Value.T_blob -> 5

let ctype_of_tag = function
  | 0 -> Value.T_int32
  | 1 -> Value.T_int64
  | 2 -> Value.T_double
  | 3 -> Value.T_timestamp
  | 4 -> Value.T_string
  | 5 -> Value.T_blob
  | n -> raise (Binio.Corrupt (Printf.sprintf "schema: bad type tag %d" n))

let encode_column buf c =
  Binio.put_string buf c.name;
  Binio.put_u8 buf (ctype_tag c.ctype);
  Value.encode buf c.default

let decode_column cur =
  let name = Binio.get_string cur in
  let ctype = ctype_of_tag (Binio.get_u8 cur) in
  let default = Value.decode ctype cur in
  { name; ctype; default }

let encode buf t =
  Binio.put_varint buf t.version;
  Binio.put_varint buf (Array.length t.columns);
  Array.iter (fun c -> encode_column buf c) t.columns;
  Binio.put_varint buf (Array.length t.pkey);
  Array.iter (fun i -> Binio.put_varint buf i) t.pkey

let decode cur =
  let version = Binio.get_varint cur in
  let ncols = Binio.get_varint cur in
  if ncols <= 0 || ncols > 4096 then raise (Binio.Corrupt "schema: bad column count");
  let columns = Array.init ncols (fun _ -> decode_column cur) in
  let nkey = Binio.get_varint cur in
  if nkey <= 0 || nkey > ncols then raise (Binio.Corrupt "schema: bad key count");
  let pkey = Array.init nkey (fun _ -> Binio.get_varint cur) in
  (try validate columns pkey
   with Invalid msg -> raise (Binio.Corrupt ("schema: " ^ msg)));
  { columns; pkey; version }
