(** A LittleTable database: a directory of tables plus shared
    configuration, clock, and filesystem.

    LittleTable "is a relational database, run as an independent server
    process" (§3.1); this module is the embedded engine that both the
    server ({!Lt_net.Server}) and in-process users (tests, benchmarks,
    examples) drive. Each table lives in its own subdirectory. The only
    cross-table state is the shared {!Lt_vfs.Vfs.t} and {!Lt_util.Clock.t}
    — "the server shares almost no state between tables" (§5.1.4), which
    is why multi-writer insert throughput scales (Figure 4). *)

type t

(** [open_ ?config ?clock ?vfs ~dir ()] opens (creating the directory if
    needed) a database rooted at [dir], discovering existing tables from
    their descriptors. Defaults: {!Config.default}, the system clock, the
    real filesystem. *)
val open_ :
  ?config:Config.t ->
  ?clock:Lt_util.Clock.t ->
  ?vfs:Lt_vfs.Vfs.t ->
  dir:string ->
  unit ->
  t

val config : t -> Config.t

(** The process-wide block cache shared by every table's readers — sized
    by {!Config.t.cache_bytes} at [open_]; [None] when disabled. Exposed
    for benchmarks and tests that inspect hit/eviction counters
    directly; normal observability goes through {!Table.stats}. *)
val block_cache : t -> Block.t Lt_cache.Block_cache.t option

(** The observability bundle shared by every table: latency histograms,
    the slow-op ring, and a collector that folds {!Table.stats} and the
    block-cache counters into the Prometheus exposition. Created at
    [open_] from {!Config.t.obs_enabled} / {!Config.t.slow_op_micros}
    with the database clock. *)
val obs : t -> Lt_obs.Obs.t

(** The parallel-scan worker pool shared by every table, obtained from
    {!Lt_exec.Pool.shared} and sized once at [open_] from
    {!Config.t.query_domains}; [None] when that is 0 (sequential
    scans). Never shut down by {!close} — the underlying domains are
    process-wide and shared across databases of the same size. *)
val scan_pool : t -> Lt_exec.Pool.t option

val clock : t -> Lt_util.Clock.t
val vfs : t -> Lt_vfs.Vfs.t
val dir : t -> string

(** [create_table t name schema ~ttl].
    @raise Invalid_argument if the table exists or the name contains
    ['/'] or is empty. *)
val create_table : t -> string -> Schema.t -> ttl:int64 option -> Table.t

(** @raise Not_found when absent. *)
val table : t -> string -> Table.t

val find_table : t -> string -> Table.t option

(** Sorted table names. *)
val table_names : t -> string list

(** Drop a table and delete its files. @raise Not_found when absent. *)
val drop_table : t -> string -> unit

(** Run one maintenance pass (flush-by-age, merging, TTL expiry) over
    every table — the body of the server's background thread. *)
val maintenance : t -> unit

(** Flush every table's memtables. *)
val flush_all : t -> unit

(** Close all tables (unflushed data is lost, as after a crash). *)
val close : t -> unit
