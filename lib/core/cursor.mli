(** Merge cursors.

    Query execution "opens a cursor on each tablet, filters any rows that
    fall outside the query's timestamp bounds (which generally do not
    align exactly with the tablets' timespans), and merge-sorts the
    resulting streams to form a single result stream ordered by primary
    key" (§3.2). This module is that merge-sort: a heap of per-tablet
    pull iterators.

    Each source carries a priority (its tablet id; memtables are newer
    than any on-disk tablet they shadow). When two sources yield the same
    key — possible only if uniqueness enforcement was bypassed — the
    higher-priority row wins and the others are dropped. *)

(** A pull iterator: [None] means exhausted. Single-consumer. *)
type source = unit -> (string * Value.t array) option

(** [merge ~asc sources] merge-sorts [(priority, source)] pairs into one
    ordered, deduplicated stream. *)
val merge : asc:bool -> (int * source) list -> source

(** [filter_ts ~scanned ?ts_min ?ts_max src] drops rows whose key
    timestamp (last 8 key bytes) falls outside the inclusive bounds,
    incrementing [scanned] for every row examined — the numerator of the
    paper's rows-scanned/rows-returned efficiency metric (§5.2.4). *)
val filter_ts :
  scanned:int ref -> ?ts_min:int64 -> ?ts_max:int64 -> source -> source

(** Stop after [n] rows. *)
val take : int -> source -> source

(** Drain the source through an accumulator — how aggregate pushdown
    consumes the residue streams that footer stats could not answer. *)
val fold : ('a -> string * Value.t array -> 'a) -> 'a -> source -> 'a

val to_list : source -> (string * Value.t array) list

(** Rows only, discarding keys. *)
val rows : source -> Value.t array list
