open Lt_util
module Vfs = Lt_vfs.Vfs
module Bcache = Lt_cache.Block_cache
module Obs = Lt_obs.Obs
module Metrics = Lt_obs.Metrics

let magic = 0x4C54424C54312E30L (* "LTBLT1.0" *)

let trailer_len = 24

(* ------------------------------------------------------------------ *)
(* Frames: the compression + checksum wrapper around blocks and footer *)
(* ------------------------------------------------------------------ *)

let frame_header_len = 13 (* u8 codec + u32 comp_len + u32 raw_len + i32 crc *)

let encode_frame raw =
  let compressed = Lt_lz.Lz.compress raw in
  let codec, payload =
    if String.length compressed < String.length raw then (1, compressed)
    else (0, raw)
  in
  let buf = Buffer.create (frame_header_len + String.length payload) in
  Binio.put_u8 buf codec;
  Binio.put_u32 buf (String.length payload);
  Binio.put_u32 buf (String.length raw);
  Binio.put_i32 buf (Crc32c.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode_frame frame =
  let cur = Binio.cursor frame in
  let codec = Binio.get_u8 cur in
  let comp_len = Binio.get_u32 cur in
  let raw_len = Binio.get_u32 cur in
  let crc = Binio.get_i32 cur in
  let payload = Binio.get_bytes cur comp_len in
  Binio.expect_end cur;
  if Crc32c.string payload <> crc then
    raise (Binio.Corrupt "tablet frame: checksum mismatch");
  match codec with
  | 0 ->
      if String.length payload <> raw_len then
        raise (Binio.Corrupt "tablet frame: raw length mismatch");
      payload
  | 1 -> (
      try Lt_lz.Lz.decompress ~raw_len payload
      with Lt_lz.Lz.Corrupt msg -> raise (Binio.Corrupt ("tablet frame: " ^ msg)))
  | n -> raise (Binio.Corrupt (Printf.sprintf "tablet frame: unknown codec %d" n))

(* ------------------------------------------------------------------ *)
(* Footer                                                              *)
(* ------------------------------------------------------------------ *)

type index_entry = {
  file_off : int;
  frame_len : int;
  rows : int;
  last_key : string;
}

type summary = {
  row_count : int;
  size : int;
  min_ts : int64;
  max_ts : int64;
  min_key : string;
  max_key : string;
}

type footer = {
  schema : Schema.t;
  f_row_count : int;
  f_min_ts : int64;
  f_max_ts : int64;
  f_min_key : string;
  f_max_key : string;
  index : index_entry array;
  bloom : Lt_bloom.Bloom.t option;
}

let encode_footer f =
  let buf = Buffer.create 4096 in
  Schema.encode buf f.schema;
  Binio.put_varint buf f.f_row_count;
  Binio.put_i64 buf f.f_min_ts;
  Binio.put_i64 buf f.f_max_ts;
  Binio.put_string buf f.f_min_key;
  Binio.put_string buf f.f_max_key;
  Binio.put_varint buf (Array.length f.index);
  Array.iter
    (fun e ->
      Binio.put_varint buf e.file_off;
      Binio.put_varint buf e.frame_len;
      Binio.put_varint buf e.rows;
      Binio.put_string buf e.last_key)
    f.index;
  (match f.bloom with
  | None -> Binio.put_u8 buf 0
  | Some bloom ->
      Binio.put_u8 buf 1;
      Lt_bloom.Bloom.encode buf bloom);
  Buffer.contents buf

let decode_footer raw =
  let cur = Binio.cursor raw in
  let schema = Schema.decode cur in
  let f_row_count = Binio.get_varint cur in
  let f_min_ts = Binio.get_i64 cur in
  let f_max_ts = Binio.get_i64 cur in
  let f_min_key = Binio.get_string cur in
  let f_max_key = Binio.get_string cur in
  let nblocks = Binio.get_varint cur in
  let index =
    Array.init nblocks (fun _ ->
        let file_off = Binio.get_varint cur in
        let frame_len = Binio.get_varint cur in
        let rows = Binio.get_varint cur in
        let last_key = Binio.get_string cur in
        { file_off; frame_len; rows; last_key })
  in
  let bloom =
    match Binio.get_u8 cur with
    | 0 -> None
    | 1 -> Some (Lt_bloom.Bloom.decode cur)
    | _ -> raise (Binio.Corrupt "tablet footer: bad bloom tag")
  in
  Binio.expect_end cur;
  { schema; f_row_count; f_min_ts; f_max_ts; f_min_key; f_max_key; index; bloom }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  vfs : Vfs.t;
  path : string;
  w_schema : Schema.t;
  block_size : int;
  file : Vfs.file;
  builder : Block.builder;
  mutable w_off : int;
  mutable w_index : index_entry list;  (** reversed *)
  mutable w_rows : int;
  mutable w_min_ts : int64;
  mutable w_max_ts : int64;
  mutable w_min_key : string option;
  mutable w_max_key : string;
  mutable bloom_keys : int;  (** number of bloom insertions so far *)
  mutable bloom_pending : string list;  (** keys awaiting filter sizing *)
  bloom_bits_per_key : int;
  mutable bloom : Lt_bloom.Bloom.t option;
}

let writer vfs ~path ~schema ~block_size ~bloom_bits_per_key ?expected_rows () =
  if block_size < 1024 then invalid_arg "Tablet.writer: block size too small";
  let file = Vfs.create vfs path in
  let bloom =
    match expected_rows with
    | Some rows when bloom_bits_per_key > 0 ->
        (* One insertion per key plus one per proper key prefix. *)
        let per_row = Array.length (Schema.pkey schema) in
        Some
          (Lt_bloom.Bloom.create ~bits_per_key:bloom_bits_per_key
             ~expected_keys:(max 1 (rows * per_row)) ())
    | _ -> None
  in
  {
    vfs;
    path;
    w_schema = schema;
    block_size;
    file;
    builder = Block.builder ();
    w_off = 0;
    w_index = [];
    w_rows = 0;
    w_min_ts = Int64.max_int;
    w_max_ts = Int64.min_int;
    w_min_key = None;
    w_max_key = "";
    bloom_keys = 0;
    bloom_pending = [];
    bloom_bits_per_key;
    bloom;
  }

let flush_block w =
  match Block.last_key w.builder with
  | None -> ()
  | Some last_key ->
      let rows = Block.entry_count w.builder in
      let raw = Block.finish w.builder in
      let frame = encode_frame raw in
      Vfs.append w.vfs w.file frame;
      w.w_index <-
        { file_off = w.w_off; frame_len = String.length frame; rows; last_key }
        :: w.w_index;
      w.w_off <- w.w_off + String.length frame

(* The filter must be sized before the first insertion, but the final key
   count is unknown while streaming. We buffer the first few thousand
   bloom keys; once the stream exceeds that, we size the filter
   generously from the rows-per-block ratio and drain the buffer. *)
let bloom_buffer_limit = 8192

let bloom_add w key =
  if w.bloom_bits_per_key > 0 then begin
    match w.bloom with
    | Some bloom ->
        Lt_bloom.Bloom.add bloom key;
        w.bloom_keys <- w.bloom_keys + 1
    | None ->
        w.bloom_pending <- key :: w.bloom_pending;
        w.bloom_keys <- w.bloom_keys + 1;
        if w.bloom_keys >= bloom_buffer_limit then begin
          (* Estimate the total: assume the tablet could be ~4096 blocks
             of the density seen so far (cap at 64 M keys). *)
          let blocks_so_far = max 1 (List.length w.w_index + 1) in
          let per_block = w.bloom_keys / blocks_so_far in
          let estimate = min 67_108_864 (max w.bloom_keys (per_block * 4096)) in
          let bloom =
            Lt_bloom.Bloom.create ~bits_per_key:w.bloom_bits_per_key
              ~expected_keys:estimate ()
          in
          List.iter (Lt_bloom.Bloom.add bloom) w.bloom_pending;
          w.bloom_pending <- [];
          w.bloom <- Some bloom
        end
  end

let add_enc w ~key ~key_prefixes ~ts ~value_size ~encode =
  (match w.w_min_key with None -> w.w_min_key <- Some key | Some _ -> ());
  w.w_max_key <- key;
  w.w_rows <- w.w_rows + 1;
  if ts < w.w_min_ts then w.w_min_ts <- ts;
  if ts > w.w_max_ts then w.w_max_ts <- ts;
  bloom_add w key;
  if w.bloom_bits_per_key > 0 then List.iter (bloom_add w) key_prefixes;
  Block.add_enc w.builder ~key ~value_size ~encode;
  if Block.raw_size w.builder >= w.block_size then flush_block w

let add w ~key ~key_prefixes ~ts ~value =
  add_enc w ~key ~key_prefixes ~ts ~value_size:(String.length value)
    ~encode:(fun buf -> Buffer.add_string buf value)

let finish w =
  if w.w_rows = 0 then invalid_arg "Tablet.finish: empty tablet";
  flush_block w;
  let bloom =
    match (w.bloom, w.bloom_pending) with
    | (Some _ as b), _ -> b
    | None, [] -> None
    | None, pending ->
        let bloom =
          Lt_bloom.Bloom.create ~bits_per_key:w.bloom_bits_per_key
            ~expected_keys:(List.length pending) ()
        in
        List.iter (Lt_bloom.Bloom.add bloom) pending;
        Some bloom
  in
  let footer =
    {
      schema = w.w_schema;
      f_row_count = w.w_rows;
      f_min_ts = w.w_min_ts;
      f_max_ts = w.w_max_ts;
      f_min_key = Option.get w.w_min_key;
      f_max_key = w.w_max_key;
      index = Array.of_list (List.rev w.w_index);
      bloom;
    }
  in
  let footer_frame = encode_frame (encode_footer footer) in
  Vfs.append w.vfs w.file footer_frame;
  let trailer = Buffer.create trailer_len in
  Binio.put_i64 trailer (Int64.of_int w.w_off);
  Binio.put_i64 trailer (Int64.of_int (String.length footer_frame));
  Binio.put_i64 trailer magic;
  Vfs.append w.vfs w.file (Buffer.contents trailer);
  Vfs.fsync w.vfs w.file;
  let size = Vfs.file_size w.vfs w.file in
  Vfs.close w.vfs w.file;
  (* fsync makes the bytes durable but not the directory entry: without
     a parent-directory sync the finished tablet can vanish on crash even
     though the descriptor that references it survives. *)
  Vfs.sync_dir w.vfs (Filename.dirname w.path);
  {
    row_count = w.w_rows;
    size;
    min_ts = w.w_min_ts;
    max_ts = w.w_max_ts;
    min_key = Option.get w.w_min_key;
    max_key = w.w_max_key;
  }

let abandon w =
  (try Vfs.close w.vfs w.file with Vfs.Io_error _ -> ());
  try Vfs.delete w.vfs w.path with Vfs.Io_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = {
  r_vfs : Vfs.t;
  r_path : string;
  r_file : Vfs.file;
  r_size : int;
  footer : footer;
  mutable target : Schema.t;
  r_cache : (Block.t Bcache.t * int) option;
      (** shared block cache plus this reader's file id *)
  r_obs : Obs.t;
  r_h_read : Metrics.Histogram.t;
  r_h_decomp : Metrics.Histogram.t;
}

let open_reader ?cache ?(obs = Obs.noop) vfs ~path ~into =
  let file = Vfs.open_read vfs path in
  match
    let size = Vfs.file_size vfs file in
    if size < trailer_len then raise (Binio.Corrupt "tablet: file too short");
    let trailer = Vfs.pread vfs file ~off:(size - trailer_len) ~len:trailer_len in
    let cur = Binio.cursor trailer in
    let footer_off = Int64.to_int (Binio.get_i64 cur) in
    let footer_len = Int64.to_int (Binio.get_i64 cur) in
    if Binio.get_i64 cur <> magic then
      raise (Binio.Corrupt "tablet: bad magic");
    if footer_off < 0 || footer_len <= 0 || footer_off + footer_len > size then
      raise (Binio.Corrupt "tablet: bad trailer geometry");
    let footer_frame = Vfs.pread vfs file ~off:footer_off ~len:footer_len in
    let footer = decode_footer (decode_frame footer_frame) in
    let r_cache = Option.map (fun c -> (c, Bcache.file_id c)) cache in
    {
      r_vfs = vfs;
      r_path = path;
      r_file = file;
      r_size = size;
      footer;
      target = into;
      r_cache;
      r_obs = obs;
      r_h_read = Obs.block_read_hist obs;
      r_h_decomp = Obs.block_decompress_hist obs;
    }
  with
  | r -> r
  | exception e ->
      (try Vfs.close vfs file with Vfs.Io_error _ -> ());
      raise e

(* Closing also invalidates this reader's cached blocks: readers close
   exactly when their file is deleted (merge, expiry, bulk delete, drop)
   or the table shuts down, and file ids are never reused, so a reopened
   path caches afresh rather than resurrecting stale blocks. *)
let close r =
  (match r.r_cache with
  | Some (c, fid) -> Bcache.invalidate_file c ~file:fid
  | None -> ());
  try Vfs.close r.r_vfs r.r_file with Vfs.Io_error _ -> ()

let summary r =
  {
    row_count = r.footer.f_row_count;
    size = r.r_size;
    min_ts = r.footer.f_min_ts;
    max_ts = r.footer.f_max_ts;
    min_key = r.footer.f_min_key;
    max_key = r.footer.f_max_key;
  }

let stored_schema r = r.footer.schema

let set_target_schema r s = r.target <- s

let may_contain_prefix r prefix =
  match r.footer.bloom with
  | None -> true
  | Some bloom -> Lt_bloom.Bloom.mem bloom prefix

let block_count r = Array.length r.footer.index

(* Stage timings: "read" covers the (modeled) disk pread, "decompress"
   the checksum + frame decompression. When observability is off both
   now_us calls return 0 and the observes are boolean-load no-ops. *)
let read_block r i =
  let e = r.footer.index.(i) in
  let t0 = Obs.now_us r.r_obs in
  let frame = Vfs.pread r.r_vfs r.r_file ~off:e.file_off ~len:e.frame_len in
  let t1 = Obs.now_us r.r_obs in
  Metrics.Histogram.observe_us r.r_h_read (Int64.sub t1 t0);
  let raw = decode_frame frame in
  Metrics.Histogram.observe_us r.r_h_decomp
    (Int64.sub (Obs.now_us r.r_obs) t1);
  raw

(* The cache sits above the VFS and below the block decode: a hit skips
   the (modeled) disk read, the checksum, and the decompression. Weights
   are raw frame bytes, approximating resident memory. *)
let load_block r i =
  match r.r_cache with
  | None -> Block.decode (read_block r i)
  | Some (c, fid) -> (
      match Bcache.find c ~file:fid ~block:i with
      | Some b -> b
      | None ->
          let raw = read_block r i in
          let b = Block.decode raw in
          Bcache.insert c ~file:fid ~block:i ~bytes:(String.length raw) b;
          b)

(* First block that could contain a key >= k: binary search on last keys. *)
let search_block r k =
  let index = r.footer.index in
  let lo = ref 0 and hi = ref (Array.length index) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare index.(mid).last_key k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let mem r key =
  may_contain_prefix r key
  && String.compare key r.footer.f_min_key >= 0
  && String.compare key r.footer.f_max_key <= 0
  &&
  let bi = search_block r key in
  bi < block_count r
  &&
  let block = load_block r bi in
  let i = Block.search_geq block key in
  i < Block.count block && Block.key block i = key

(* Decode a row straight out of the block's backing bytes: no per-row
   value string, just a (offset, length) window into the block data. *)
let translate_at r b i ~key =
  let off, len = Block.value_span b i in
  Row_codec.decode_translated_slice ~from:r.footer.schema ~into:r.target ~key
    ~data:(Block.data b) ~off ~len

let iter r ~asc ?lo ?hi () =
  let nblocks = block_count r in
  let in_lo k = match lo with None -> true | Some b -> String.compare k b >= 0 in
  let in_hi k = match hi with None -> true | Some b -> String.compare k b < 0 in
  if asc then begin
    let bi = ref (match lo with None -> 0 | Some k -> search_block r k) in
    let block = ref None in
    let pos = ref 0 in
    let rec next () =
      match !block with
      | None ->
          if !bi >= nblocks then None
          else begin
            let b = load_block r !bi in
            block := Some b;
            pos := (match lo with None -> 0 | Some k -> Block.search_geq b k);
            next ()
          end
      | Some b ->
          if !pos >= Block.count b then begin
            block := None;
            incr bi;
            next ()
          end
          else begin
            let i = !pos in
            let key = Block.key b i in
            incr pos;
            if not (in_hi key) then begin
              (* Sorted: nothing further can qualify. *)
              bi := nblocks;
              block := None;
              None
            end
            else Some (key, translate_at r b i ~key)
          end
    in
    next
  end
  else begin
    let bi =
      ref
        (match hi with
        | None -> nblocks - 1
        | Some k -> min (search_block r k) (nblocks - 1))
    in
    let block = ref None in
    let pos = ref (-1) in
    let rec next () =
      if !bi < 0 then None
      else begin
        match !block with
        | None ->
            let b = load_block r !bi in
            block := Some b;
            (* Last index with key < hi. *)
            pos :=
              (match hi with
              | None -> Block.count b - 1
              | Some k -> Block.search_geq b k - 1);
            next ()
        | Some b ->
            if !pos < 0 then begin
              block := None;
              decr bi;
              (* Earlier blocks are entirely below hi. *)
              if !bi >= 0 then begin
                let b' = load_block r !bi in
                block := Some b';
                pos := Block.count b' - 1
              end;
              next ()
            end
            else begin
              let i = !pos in
              let key = Block.key b i in
              decr pos;
              if not (in_lo key) then begin
                bi := -1;
                block := None;
                None
              end
              else Some (key, translate_at r b i ~key)
            end
      end
    in
    next
  end
