open Lt_util
module Vfs = Lt_vfs.Vfs
module Bcache = Lt_cache.Block_cache
module Obs = Lt_obs.Obs
module Metrics = Lt_obs.Metrics

let magic = 0x4C54424C54312E30L (* "LTBLT1.0" *)

let trailer_len = 24

(* ------------------------------------------------------------------ *)
(* Frames: the compression + checksum wrapper around blocks and footer *)
(* ------------------------------------------------------------------ *)

let frame_header_len = 13 (* u8 codec + u32 comp_len + u32 raw_len + i32 crc *)

let encode_frame raw =
  let compressed = Lt_lz.Lz.compress raw in
  let codec, payload =
    if String.length compressed < String.length raw then (1, compressed)
    else (0, raw)
  in
  let buf = Buffer.create (frame_header_len + String.length payload) in
  Binio.put_u8 buf codec;
  Binio.put_u32 buf (String.length payload);
  Binio.put_u32 buf (String.length raw);
  Binio.put_i32 buf (Crc32c.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Columnar blocks carry per-column sections that are already LZ'd where
   profitable; wrapping them in a stored frame keeps the CRC without
   burning merge CPU on a compression pass that cannot win. *)
let encode_frame_store raw =
  let buf = Buffer.create (frame_header_len + String.length raw) in
  Binio.put_u8 buf 0;
  Binio.put_u32 buf (String.length raw);
  Binio.put_u32 buf (String.length raw);
  Binio.put_i32 buf (Crc32c.string raw);
  Buffer.add_string buf raw;
  Buffer.contents buf

let decode_frame frame =
  let cur = Binio.cursor frame in
  let codec = Binio.get_u8 cur in
  let comp_len = Binio.get_u32 cur in
  let raw_len = Binio.get_u32 cur in
  let crc = Binio.get_i32 cur in
  let payload = Binio.get_bytes cur comp_len in
  Binio.expect_end cur;
  if Crc32c.string payload <> crc then
    raise (Binio.Corrupt "tablet frame: checksum mismatch");
  match codec with
  | 0 ->
      if String.length payload <> raw_len then
        raise (Binio.Corrupt "tablet frame: raw length mismatch");
      payload
  | 1 -> (
      try Lt_lz.Lz.decompress ~raw_len payload
      with Lt_lz.Lz.Corrupt msg -> raise (Binio.Corrupt ("tablet frame: " ^ msg)))
  | n -> raise (Binio.Corrupt (Printf.sprintf "tablet frame: unknown codec %d" n))

(* ------------------------------------------------------------------ *)
(* Footer                                                              *)
(* ------------------------------------------------------------------ *)

type index_entry = {
  file_off : int;
  frame_len : int;
  rows : int;
  last_key : string;
  e_layout : Block.layout;
  e_stats : Agg.col_stats array option;
      (** per-column min/max/sum, columnar blocks only *)
}

type summary = {
  row_count : int;
  size : int;
  min_ts : int64;
  max_ts : int64;
  min_key : string;
  max_key : string;
  columnar : bool;
}

type footer = {
  schema : Schema.t;
  f_row_count : int;
  f_min_ts : int64;
  f_max_ts : int64;
  f_min_key : string;
  f_max_key : string;
  index : index_entry array;
  bloom : Lt_bloom.Bloom.t option;
}

(* Per-column footer stats. [cs_min]/[cs_max] travel as their column's
   value encoding (the footer schema supplies the type on decode);
   presence flags: bit 0 = min/max, bit 1 = wrapping int sum. *)
let encode_col_stats buf (st : Agg.col_stats) =
  let flags =
    (if st.Agg.cs_min <> None then 1 else 0)
    lor if st.Agg.cs_sum <> None then 2 else 0
  in
  Binio.put_u8 buf flags;
  (match (st.Agg.cs_min, st.Agg.cs_max) with
  | Some mn, Some mx ->
      Value.encode buf mn;
      Value.encode buf mx
  | _ -> ());
  match st.Agg.cs_sum with Some s -> Binio.put_i64 buf s | None -> ()

let decode_col_stats ctype cur =
  let flags = Binio.get_u8 cur in
  let cs_min, cs_max =
    if flags land 1 <> 0 then
      let mn = Value.decode ctype cur in
      let mx = Value.decode ctype cur in
      (Some mn, Some mx)
    else (None, None)
  in
  let cs_sum = if flags land 2 <> 0 then Some (Binio.get_i64 cur) else None in
  { Agg.cs_min; cs_max; cs_sum }

let encode_footer f =
  let buf = Buffer.create 4096 in
  Schema.encode buf f.schema;
  Binio.put_varint buf f.f_row_count;
  Binio.put_i64 buf f.f_min_ts;
  Binio.put_i64 buf f.f_max_ts;
  Binio.put_string buf f.f_min_key;
  Binio.put_string buf f.f_max_key;
  Binio.put_varint buf (Array.length f.index);
  Array.iter
    (fun e ->
      Binio.put_varint buf e.file_off;
      Binio.put_varint buf e.frame_len;
      Binio.put_varint buf e.rows;
      Binio.put_string buf e.last_key;
      match e.e_layout with
      | Block.Row_major -> Binio.put_u8 buf 0
      | Block.Col_major ->
          Binio.put_u8 buf 1;
          let stats = Option.get e.e_stats in
          Array.iter (encode_col_stats buf) stats)
    f.index;
  (match f.bloom with
  | None -> Binio.put_u8 buf 0
  | Some bloom ->
      Binio.put_u8 buf 1;
      Lt_bloom.Bloom.encode buf bloom);
  Buffer.contents buf

let decode_footer raw =
  let cur = Binio.cursor raw in
  let schema = Schema.decode cur in
  let f_row_count = Binio.get_varint cur in
  let f_min_ts = Binio.get_i64 cur in
  let f_max_ts = Binio.get_i64 cur in
  let f_min_key = Binio.get_string cur in
  let f_max_key = Binio.get_string cur in
  let nblocks = Binio.get_varint cur in
  let columns = Schema.columns schema in
  let index =
    Array.init nblocks (fun _ ->
        let file_off = Binio.get_varint cur in
        let frame_len = Binio.get_varint cur in
        let rows = Binio.get_varint cur in
        let last_key = Binio.get_string cur in
        let e_layout, e_stats =
          match Binio.get_u8 cur with
          | 0 -> (Block.Row_major, None)
          | 1 ->
              let stats =
                Array.map
                  (fun (c : Schema.column) -> decode_col_stats c.Schema.ctype cur)
                  columns
              in
              (Block.Col_major, Some stats)
          | _ -> raise (Binio.Corrupt "tablet footer: bad block layout tag")
        in
        { file_off; frame_len; rows; last_key; e_layout; e_stats })
  in
  let bloom =
    match Binio.get_u8 cur with
    | 0 -> None
    | 1 -> Some (Lt_bloom.Bloom.decode cur)
    | _ -> raise (Binio.Corrupt "tablet footer: bad bloom tag")
  in
  Binio.expect_end cur;
  { schema; f_row_count; f_min_ts; f_max_ts; f_min_key; f_max_key; index; bloom }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type builder_kind = B_row of Block.builder | B_col of Block.col_builder

type writer = {
  vfs : Vfs.t;
  path : string;
  w_schema : Schema.t;
  block_size : int;
  file : Vfs.file;
  w_builder : builder_kind;
  mutable w_off : int;
  mutable w_index : index_entry list;  (** reversed *)
  mutable w_rows : int;
  mutable w_min_ts : int64;
  mutable w_max_ts : int64;
  mutable w_min_key : string option;
  mutable w_max_key : string;
  mutable bloom_keys : int;  (** number of bloom insertions so far *)
  mutable bloom_pending : string list;  (** keys awaiting filter sizing *)
  bloom_bits_per_key : int;
  mutable bloom : Lt_bloom.Bloom.t option;
}

let writer vfs ~path ~schema ~block_size ~bloom_bits_per_key ?expected_rows
    ?(layout = Block.Row_major) () =
  if block_size < 1024 then invalid_arg "Tablet.writer: block size too small";
  let file = Vfs.create vfs path in
  let bloom =
    match expected_rows with
    | Some rows when bloom_bits_per_key > 0 ->
        (* One insertion per key plus one per proper key prefix. *)
        let per_row = Array.length (Schema.pkey schema) in
        Some
          (Lt_bloom.Bloom.create ~bits_per_key:bloom_bits_per_key
             ~expected_keys:(max 1 (rows * per_row)) ())
    | _ -> None
  in
  {
    vfs;
    path;
    w_schema = schema;
    block_size;
    file;
    w_builder =
      (match layout with
      | Block.Row_major -> B_row (Block.builder ())
      | Block.Col_major -> B_col (Block.col_builder schema));
    w_off = 0;
    w_index = [];
    w_rows = 0;
    w_min_ts = Int64.max_int;
    w_max_ts = Int64.min_int;
    w_min_key = None;
    w_max_key = "";
    bloom_keys = 0;
    bloom_pending = [];
    bloom_bits_per_key;
    bloom;
  }

let flush_block w =
  match w.w_builder with
  | B_row builder -> (
      match Block.last_key builder with
      | None -> ()
      | Some last_key ->
          let rows = Block.entry_count builder in
          let raw = Block.finish builder in
          let frame = encode_frame raw in
          Vfs.append w.vfs w.file frame;
          w.w_index <-
            { file_off = w.w_off; frame_len = String.length frame; rows;
              last_key; e_layout = Block.Row_major; e_stats = None }
            :: w.w_index;
          w.w_off <- w.w_off + String.length frame)
  | B_col builder -> (
      match Block.col_last_key builder with
      | None -> ()
      | Some last_key ->
          let rows = Block.col_count builder in
          let raw, stats = Block.col_finish builder in
          let frame = encode_frame_store raw in
          Vfs.append w.vfs w.file frame;
          w.w_index <-
            { file_off = w.w_off; frame_len = String.length frame; rows;
              last_key; e_layout = Block.Col_major; e_stats = Some stats }
            :: w.w_index;
          w.w_off <- w.w_off + String.length frame)

(* The filter must be sized before the first insertion, but the final key
   count is unknown while streaming. We buffer the first few thousand
   bloom keys; once the stream exceeds that, we size the filter
   generously from the rows-per-block ratio and drain the buffer. *)
let bloom_buffer_limit = 8192

let bloom_add w key =
  if w.bloom_bits_per_key > 0 then begin
    match w.bloom with
    | Some bloom ->
        Lt_bloom.Bloom.add bloom key;
        w.bloom_keys <- w.bloom_keys + 1
    | None ->
        w.bloom_pending <- key :: w.bloom_pending;
        w.bloom_keys <- w.bloom_keys + 1;
        if w.bloom_keys >= bloom_buffer_limit then begin
          (* Estimate the total: assume the tablet could be ~4096 blocks
             of the density seen so far (cap at 64 M keys). *)
          let blocks_so_far = max 1 (List.length w.w_index + 1) in
          let per_block = w.bloom_keys / blocks_so_far in
          let estimate = min 67_108_864 (max w.bloom_keys (per_block * 4096)) in
          let bloom =
            Lt_bloom.Bloom.create ~bits_per_key:w.bloom_bits_per_key
              ~expected_keys:estimate ()
          in
          List.iter (Lt_bloom.Bloom.add bloom) w.bloom_pending;
          w.bloom_pending <- [];
          w.bloom <- Some bloom
        end
  end

let note_row w ~key ~key_prefixes ~ts =
  (match w.w_min_key with None -> w.w_min_key <- Some key | Some _ -> ());
  w.w_max_key <- key;
  w.w_rows <- w.w_rows + 1;
  if ts < w.w_min_ts then w.w_min_ts <- ts;
  if ts > w.w_max_ts then w.w_max_ts <- ts;
  bloom_add w key;
  if w.bloom_bits_per_key > 0 then List.iter (bloom_add w) key_prefixes

let add_enc w ~key ~key_prefixes ~ts ~value_size ~encode =
  let builder =
    match w.w_builder with
    | B_row b -> b
    | B_col _ -> invalid_arg "Tablet.add_enc: writer is columnar"
  in
  note_row w ~key ~key_prefixes ~ts;
  Block.add_enc builder ~key ~value_size ~encode;
  if Block.raw_size builder >= w.block_size then flush_block w

let add w ~key ~key_prefixes ~ts ~value =
  add_enc w ~key ~key_prefixes ~ts ~value_size:(String.length value)
    ~encode:(fun buf -> Buffer.add_string buf value)

let add_row w ~key ~key_prefixes ~ts row =
  match w.w_builder with
  | B_row builder ->
      note_row w ~key ~key_prefixes ~ts;
      Block.add_enc builder ~key
        ~value_size:(Row_codec.value_size w.w_schema row)
        ~encode:(fun buf -> Row_codec.encode_value_into buf w.w_schema row);
      if Block.raw_size builder >= w.block_size then flush_block w
  | B_col builder ->
      note_row w ~key ~key_prefixes ~ts;
      Block.col_add builder ~key row;
      if Block.col_raw_size builder >= w.block_size then flush_block w

let finish w =
  if w.w_rows = 0 then invalid_arg "Tablet.finish: empty tablet";
  flush_block w;
  let bloom =
    match (w.bloom, w.bloom_pending) with
    | (Some _ as b), _ -> b
    | None, [] -> None
    | None, pending ->
        let bloom =
          Lt_bloom.Bloom.create ~bits_per_key:w.bloom_bits_per_key
            ~expected_keys:(List.length pending) ()
        in
        List.iter (Lt_bloom.Bloom.add bloom) pending;
        Some bloom
  in
  let footer =
    {
      schema = w.w_schema;
      f_row_count = w.w_rows;
      f_min_ts = w.w_min_ts;
      f_max_ts = w.w_max_ts;
      f_min_key = Option.get w.w_min_key;
      f_max_key = w.w_max_key;
      index = Array.of_list (List.rev w.w_index);
      bloom;
    }
  in
  let footer_frame = encode_frame (encode_footer footer) in
  Vfs.append w.vfs w.file footer_frame;
  let trailer = Buffer.create trailer_len in
  Binio.put_i64 trailer (Int64.of_int w.w_off);
  Binio.put_i64 trailer (Int64.of_int (String.length footer_frame));
  Binio.put_i64 trailer magic;
  Vfs.append w.vfs w.file (Buffer.contents trailer);
  Vfs.fsync w.vfs w.file;
  let size = Vfs.file_size w.vfs w.file in
  Vfs.close w.vfs w.file;
  (* fsync makes the bytes durable but not the directory entry: without
     a parent-directory sync the finished tablet can vanish on crash even
     though the descriptor that references it survives. *)
  Vfs.sync_dir w.vfs (Filename.dirname w.path);
  {
    row_count = w.w_rows;
    size;
    min_ts = w.w_min_ts;
    max_ts = w.w_max_ts;
    min_key = Option.get w.w_min_key;
    max_key = w.w_max_key;
    columnar = (match w.w_builder with B_row _ -> false | B_col _ -> true);
  }

let abandon w =
  (try Vfs.close w.vfs w.file with Vfs.Io_error _ -> ());
  try Vfs.delete w.vfs w.path with Vfs.Io_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = {
  r_vfs : Vfs.t;
  r_path : string;
  r_file : Vfs.file;
  r_size : int;
  footer : footer;
  mutable target : Schema.t;
  r_cache : (Block.t Bcache.t * int) option;
      (** shared block cache plus this reader's file id *)
  r_obs : Obs.t;
  r_h_read : Metrics.Histogram.t;
  r_h_decomp : Metrics.Histogram.t;
}

let open_reader ?cache ?(obs = Obs.noop) vfs ~path ~into =
  let file = Vfs.open_read vfs path in
  match
    let size = Vfs.file_size vfs file in
    if size < trailer_len then raise (Binio.Corrupt "tablet: file too short");
    let trailer = Vfs.pread vfs file ~off:(size - trailer_len) ~len:trailer_len in
    let cur = Binio.cursor trailer in
    let footer_off = Int64.to_int (Binio.get_i64 cur) in
    let footer_len = Int64.to_int (Binio.get_i64 cur) in
    if Binio.get_i64 cur <> magic then
      raise (Binio.Corrupt "tablet: bad magic");
    if footer_off < 0 || footer_len <= 0 || footer_off + footer_len > size then
      raise (Binio.Corrupt "tablet: bad trailer geometry");
    let footer_frame = Vfs.pread vfs file ~off:footer_off ~len:footer_len in
    let footer = decode_footer (decode_frame footer_frame) in
    let r_cache = Option.map (fun c -> (c, Bcache.file_id c)) cache in
    {
      r_vfs = vfs;
      r_path = path;
      r_file = file;
      r_size = size;
      footer;
      target = into;
      r_cache;
      r_obs = obs;
      r_h_read = Obs.block_read_hist obs;
      r_h_decomp = Obs.block_decompress_hist obs;
    }
  with
  | r -> r
  | exception e ->
      (try Vfs.close vfs file with Vfs.Io_error _ -> ());
      raise e

(* Closing also invalidates this reader's cached blocks: readers close
   exactly when their file is deleted (merge, expiry, bulk delete, drop)
   or the table shuts down, and file ids are never reused, so a reopened
   path caches afresh rather than resurrecting stale blocks. *)
let close r =
  (match r.r_cache with
  | Some (c, fid) -> Bcache.invalidate_file c ~file:fid
  | None -> ());
  try Vfs.close r.r_vfs r.r_file with Vfs.Io_error _ -> ()

let summary r =
  {
    row_count = r.footer.f_row_count;
    size = r.r_size;
    min_ts = r.footer.f_min_ts;
    max_ts = r.footer.f_max_ts;
    min_key = r.footer.f_min_key;
    max_key = r.footer.f_max_key;
    columnar =
      Array.for_all
        (fun e -> match e.e_layout with Block.Col_major -> true | _ -> false)
        r.footer.index;
  }

let stored_schema r = r.footer.schema

let set_target_schema r s = r.target <- s

let may_contain_prefix r prefix =
  match r.footer.bloom with
  | None -> true
  | Some bloom -> Lt_bloom.Bloom.mem bloom prefix

let block_count r = Array.length r.footer.index

(* Stage timings: "read" covers the (modeled) disk pread, "decompress"
   the checksum + frame decompression. When observability is off both
   now_us calls return 0 and the observes are boolean-load no-ops. *)
let read_block r i =
  let e = r.footer.index.(i) in
  let t0 = Obs.now_us r.r_obs in
  let frame = Vfs.pread r.r_vfs r.r_file ~off:e.file_off ~len:e.frame_len in
  let t1 = Obs.now_us r.r_obs in
  Metrics.Histogram.observe_us r.r_h_read (Int64.sub t1 t0);
  let raw = decode_frame frame in
  Metrics.Histogram.observe_us r.r_h_decomp
    (Int64.sub (Obs.now_us r.r_obs) t1);
  raw

let decode_block r i raw =
  match r.footer.index.(i).e_layout with
  | Block.Row_major -> Block.decode raw
  | Block.Col_major -> Block.decode_columnar r.footer.schema raw

(* The cache sits above the VFS and below the block decode: a hit skips
   the (modeled) disk read, the checksum, and the decompression. Weights
   are raw frame bytes, approximating resident memory. Columnar blocks
   cache in the same decoded form — keys materialized, column sections
   still compressed — so cached blocks stay immutable and column
   decompression remains per-scan. *)
let load_block r i =
  match r.r_cache with
  | None -> decode_block r i (read_block r i)
  | Some (c, fid) -> (
      match Bcache.find c ~file:fid ~block:i with
      | Some b -> b
      | None ->
          let raw = read_block r i in
          let b = decode_block r i raw in
          Bcache.insert c ~file:fid ~block:i ~bytes:(String.length raw) b;
          b)

(* First block that could contain a key >= k: binary search on last keys. *)
let search_block r k =
  let index = r.footer.index in
  let lo = ref 0 and hi = ref (Array.length index) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare index.(mid).last_key k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let mem r key =
  may_contain_prefix r key
  && String.compare key r.footer.f_min_key >= 0
  && String.compare key r.footer.f_max_key <= 0
  &&
  let bi = search_block r key in
  bi < block_count r
  &&
  let block = load_block r bi in
  let i = Block.search_geq block key in
  i < Block.count block && Block.key block i = key

(* Decode a row straight out of the block's backing bytes: no per-row
   value string, just a (offset, length) window into the block data. *)
let translate_at r b i ~key =
  let off, len = Block.value_span b i in
  Row_codec.decode_translated_slice ~from:r.footer.schema ~into:r.target ~key
    ~data:(Block.data b) ~off ~len

type scan_counters = {
  sc_footer_blocks : int Atomic.t;
  sc_cols_decoded : int Atomic.t;
}

let fresh_counters () =
  { sc_footer_blocks = Atomic.make 0; sc_cols_decoded = Atomic.make 0 }

let bump counters field n =
  match counters with
  | None -> ()
  | Some c -> ignore (Atomic.fetch_and_add (field c) n)

(* Stored-schema column indices a target-schema projection needs: since
   schema evolution only appends columns, a shared index is the same
   column; target-only columns are dropped (translation refills their
   defaults). *)
let stored_projection r projection =
  match projection with
  | None -> None
  | Some cols ->
      let n = Schema.column_count r.footer.schema in
      Some (List.filter (fun c -> c < n) cols)

(* Materialize a columnar block's rows, translated to the target schema.
   Unprojected columns carry their defaults — invisible to projected
   reads, and identical to the row layout's values for untouched columns
   since defaults only change by widening. *)
let materialize r ?counters ~projection b =
  let cols = stored_projection r projection in
  let rows, decoded = Block.columnar_rows b r.footer.schema ?cols () in
  bump counters (fun c -> c.sc_cols_decoded) decoded;
  if Schema.equal r.footer.schema r.target then rows
  else
    Array.map (Schema.translate_row ~from:r.footer.schema ~into:r.target) rows

type loaded = { lb : Block.t; lrows : Value.t array array option }

let iter r ~asc ?lo ?hi ?projection ?counters () =
  let nblocks = block_count r in
  let load bi =
    let b = load_block r bi in
    let lrows =
      match Block.layout b with
      | Block.Row_major -> None
      | Block.Col_major -> Some (materialize r ?counters ~projection b)
    in
    { lb = b; lrows }
  in
  let row_at l i ~key =
    match l.lrows with
    | Some rows -> rows.(i)
    | None -> translate_at r l.lb i ~key
  in
  let in_lo k = match lo with None -> true | Some b -> String.compare k b >= 0 in
  let in_hi k = match hi with None -> true | Some b -> String.compare k b < 0 in
  if asc then begin
    let bi = ref (match lo with None -> 0 | Some k -> search_block r k) in
    let block = ref None in
    let pos = ref 0 in
    let rec next () =
      match !block with
      | None ->
          if !bi >= nblocks then None
          else begin
            let l = load !bi in
            block := Some l;
            pos := (match lo with None -> 0 | Some k -> Block.search_geq l.lb k);
            next ()
          end
      | Some l ->
          if !pos >= Block.count l.lb then begin
            block := None;
            incr bi;
            next ()
          end
          else begin
            let i = !pos in
            let key = Block.key l.lb i in
            incr pos;
            if not (in_hi key) then begin
              (* Sorted: nothing further can qualify. *)
              bi := nblocks;
              block := None;
              None
            end
            else Some (key, row_at l i ~key)
          end
    in
    next
  end
  else begin
    let bi =
      ref
        (match hi with
        | None -> nblocks - 1
        | Some k -> min (search_block r k) (nblocks - 1))
    in
    let block = ref None in
    let pos = ref (-1) in
    let rec next () =
      if !bi < 0 then None
      else begin
        match !block with
        | None ->
            let l = load !bi in
            block := Some l;
            (* Last index with key < hi. *)
            pos :=
              (match hi with
              | None -> Block.count l.lb - 1
              | Some k -> Block.search_geq l.lb k - 1);
            next ()
        | Some l ->
            if !pos < 0 then begin
              block := None;
              decr bi;
              (* Earlier blocks are entirely below hi. *)
              if !bi >= 0 then begin
                let l' = load !bi in
                block := Some l';
                pos := Block.count l'.lb - 1
              end;
              next ()
            end
            else begin
              let i = !pos in
              let key = Block.key l.lb i in
              decr pos;
              if not (in_lo key) then begin
                bi := -1;
                block := None;
                None
              end
              else Some (key, row_at l i ~key)
            end
      end
    in
    next
  end

(* ------------------------------------------------------------------ *)
(* Aggregate pushdown                                                  *)
(* ------------------------------------------------------------------ *)

let fold_aggs r ?counters ~lo ~hi ~ts_min ~ts_max ~specs ~accs () =
  if Int64.compare ts_min ts_max <= 0 then begin
    let index = r.footer.index in
    let nblocks = Array.length index in
    let stored = r.footer.schema in
    let stored_cols = Schema.columns stored in
    let target_cols = Schema.columns r.target in
    let stored_n = Array.length stored_cols in
    let ts_ix = Schema.ts_index stored in
    let ctype_of c =
      if c < Array.length target_cols then Some target_cols.(c).Schema.ctype
      else None
    in
    (* Non-footer blocks decode only the columns some spec references. *)
    let needed_cols =
      Array.to_list specs
      |> List.filter_map (fun (s : Agg.spec) -> s.Agg.a_col)
      |> List.sort_uniq Int.compare
      |> List.filter (fun c -> c < stored_n)
    in
    let stats_of e c =
      match e.e_stats with
      | None -> None
      | Some st ->
          if c >= stored_n then None
          else begin
            let s = st.(c) in
            let from_t = stored_cols.(c).Schema.ctype in
            let into_t =
              if c < Array.length target_cols then target_cols.(c).Schema.ctype
              else from_t
            in
            if from_t = into_t then Some s
            else
              (* Widened column (int32 -> int64): footer values must
                 compare against row-path values of the target type. *)
              let widen v =
                match Value.widen ~from:from_t ~into:into_t v with
                | Some x -> x
                | None -> v
              in
              Some
                { s with
                  Agg.cs_min = Option.map widen s.Agg.cs_min;
                  cs_max = Option.map widen s.Agg.cs_max }
          end
    in
    let in_lo k =
      match lo with None -> true | Some b -> String.compare k b >= 0
    in
    let in_hi k =
      match hi with None -> true | Some b -> String.compare k b < 0
    in
    let in_ts ts =
      Int64.compare ts ts_min >= 0 && Int64.compare ts ts_max <= 0
    in
    let feed_row row =
      Array.iteri
        (fun si (s : Agg.spec) ->
          Agg.feed accs.(si)
            (match s.Agg.a_col with None -> None | Some c -> Some row.(c)))
        specs
    in
    let translate =
      if Schema.equal stored r.target then fun row -> row
      else Schema.translate_row ~from:stored ~into:r.target
    in
    let start = match lo with None -> 0 | Some k -> search_block r k in
    try
      for i = start to nblocks - 1 do
        let e = index.(i) in
        (* Lower bound on this block's smallest key: the previous block's
           last key (keys here are strictly greater), or the tablet
           minimum for the first block. *)
        let above bound =
          if i = 0 then String.compare r.footer.f_min_key bound >= 0
          else String.compare index.(i - 1).last_key bound >= 0
        in
        (match hi with
        | Some k when above k -> raise Exit (* this and later blocks >= hi *)
        | _ -> ());
        let key_covered =
          (match lo with None -> true | Some k -> above k) && in_hi e.last_key
        in
        let block_ts =
          match e.e_stats with
          | None -> None
          | Some st -> (
              match (st.(ts_ix).Agg.cs_min, st.(ts_ix).Agg.cs_max) with
              | Some (Value.Timestamp a), Some (Value.Timestamp b) ->
                  Some (a, b)
              | _ -> None)
        in
        let ts_covered =
          match block_ts with
          | Some (a, b) ->
              Int64.compare a ts_min >= 0 && Int64.compare b ts_max <= 0
          | None -> false
        in
        let ts_disjoint =
          match block_ts with
          | Some (a, b) ->
              Int64.compare b ts_min < 0 || Int64.compare a ts_max > 0
          | None -> false
        in
        if
          key_covered && ts_covered
          && Agg.block_answerable ~specs ~stats_of:(stats_of e) ~ctype_of
        then begin
          (* Whole block answered from the footer: no read, no decode. *)
          Agg.absorb_block ~accs ~specs ~rows:e.rows ~stats_of:(stats_of e);
          bump counters (fun c -> c.sc_footer_blocks) 1
        end
        else if not ts_disjoint then begin
          let b = load_block r i in
          let j0 = match lo with None -> 0 | Some k -> Block.search_geq b k in
          let n = Block.count b in
          match Block.layout b with
          | Block.Row_major ->
              let j = ref j0 in
              let stop = ref false in
              while (not !stop) && !j < n do
                let key = Block.key b !j in
                if not (in_hi key) then stop := true
                else begin
                  if in_ts (Key_codec.ts_of_key key) then
                    feed_row (translate_at r b !j ~key);
                  incr j
                end
              done
          | Block.Col_major ->
              let rows, decoded =
                Block.columnar_rows b stored ~cols:needed_cols ()
              in
              bump counters (fun c -> c.sc_cols_decoded) decoded;
              let j = ref j0 in
              let stop = ref false in
              while (not !stop) && !j < n do
                let key = Block.key b !j in
                if not (in_hi key) then stop := true
                else begin
                  if in_lo key && in_ts (Key_codec.ts_of_key key) then
                    feed_row (translate rows.(!j));
                  incr j
                end
              done
        end
      done
    with Exit -> ()
  end
