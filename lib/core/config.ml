open Lt_util

type t = {
  block_size : int;
  flush_size : int;
  flush_age : int64;
  max_tablet_size : int;
  merge_delay : int64;
  rollover_spread : float;
  bloom_bits_per_key : int;
  flush_backlog : int;
  server_row_limit : int;
  enforce_unique : bool;
  cache_bytes : int;
  obs_enabled : bool;
  slow_op_micros : int64;
  trace_capacity : int;
  query_domains : int;
  columnar_age : int64;
}

let default =
  {
    block_size = 64 * 1024;
    flush_size = 16 * 1024 * 1024;
    flush_age = Int64.mul 10L Clock.minute;
    max_tablet_size = 128 * 1024 * 1024;
    merge_delay = Clock.sec 90;
    rollover_spread = 1.0;
    bloom_bits_per_key = 10;
    flush_backlog = 1;
    server_row_limit = 65536;
    enforce_unique = true;
    cache_bytes = 64 * 1024 * 1024;
    obs_enabled = true;
    slow_op_micros = Clock.msec 100;
    trace_capacity = 1024;
    query_domains = Lt_exec.Pool.default_domains ();
    columnar_age = Int64.max_int;
  }

let make ?(block_size = default.block_size) ?(flush_size = default.flush_size)
    ?(flush_age = default.flush_age)
    ?(max_tablet_size = default.max_tablet_size)
    ?(merge_delay = default.merge_delay)
    ?(rollover_spread = default.rollover_spread)
    ?(bloom_bits_per_key = default.bloom_bits_per_key)
    ?(flush_backlog = default.flush_backlog)
    ?(server_row_limit = default.server_row_limit)
    ?(enforce_unique = default.enforce_unique)
    ?(cache_bytes = default.cache_bytes) ?(obs_enabled = default.obs_enabled)
    ?(slow_op_micros = default.slow_op_micros)
    ?(trace_capacity = default.trace_capacity)
    ?(query_domains = default.query_domains)
    ?(columnar_age = default.columnar_age) () =
  {
    block_size;
    flush_size;
    flush_age;
    max_tablet_size;
    merge_delay;
    rollover_spread;
    bloom_bits_per_key;
    flush_backlog;
    server_row_limit;
    enforce_unique;
    cache_bytes;
    obs_enabled;
    slow_op_micros;
    trace_capacity;
    query_domains;
    columnar_age;
  }
