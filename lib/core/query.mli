(** Query descriptions.

    "Every query in LittleTable is an ordered scan of rows within a
    two-dimensional bounding box of timestamps in one dimension and
    primary keys or prefixes thereof in the other. These bounds may be
    inclusive or exclusive." (§3.1.) Results come back sorted by primary
    key, ascending or descending, optionally limited (§3.5). *)

(** A bound on the key dimension: a prefix of primary-key values,
    inclusive or exclusive, or unbounded. *)
type key_bound =
  | Unbounded
  | Incl of Value.t list
  | Excl of Value.t list

type direction = Asc | Desc

type t = {
  key_low : key_bound;
  key_high : key_bound;
  ts_min : int64 option;  (** inclusive, microseconds *)
  ts_max : int64 option;  (** inclusive *)
  direction : direction;
  limit : int option;
  projection : int list option;
      (** columns the caller will read (schema indices). [None] = all.
          Purely an optimization hint: columnar tablets skip decoding
          unlisted columns, whose returned cells are then unspecified
          (column defaults); row-major data ignores it. *)
}

(** Everything, ascending, no limit. *)
val all : t

(** [prefix vs] scans every row whose key starts with [vs]. *)
val prefix : Value.t list -> t

(** Restrict to [\[ts_min, ts_max\]] (either side optional). *)
val between : ?ts_min:int64 -> ?ts_max:int64 -> t -> t

val with_direction : direction -> t -> t

val with_limit : int -> t -> t

(** Declare the columns the caller will read (see {!t.projection}). *)
val with_projection : int list -> t -> t

(** {1 Compilation}

    [compile schema q] translates the value-level bounds into encoded-key
    byte bounds: a half-open range [\[lo, hi)] ([hi = None] meaning
    unbounded above). [None] overall means the range is provably empty. *)

type compiled = { lo : string; hi : string option }

val compile : Schema.t -> t -> compiled option

val pp : Format.formatter -> t -> unit
