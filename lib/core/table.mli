(** A LittleTable table: a union of in-memory and on-disk tablets (§3.2).

    The table owns one directory holding its {!Descriptor} file and its
    tablet files. Rows are binned into filling memtables by time period
    (§3.4.2/§3.4.3); frozen memtables flush — together with their
    flush-dependency closure, atomically — into on-disk tablets; a
    background maintenance step merges tablets (§3.4.1) and reclaims
    those whose rows have all passed the table's TTL.

    Concurrency: inserts and schema changes serialize on a per-table
    writer lock (the paper's applications are single-writer per table
    anyway, §2.3.4); queries snapshot the persistent memtables and the
    tablet list under a brief state lock and then scan without blocking
    inserts. On-disk tablets are reference-counted so a merge or expiry
    never deletes a file out from under a running scan. *)

type t

exception Duplicate_key of string
(** Raised on a primary-key violation; the payload renders the key. *)

(** {1 Lifecycle} *)

(** [create vfs ~clock ~config ~dir ~name schema ~ttl] makes a fresh
    table (its directory must not already hold one) and writes the
    initial descriptor. [ttl] is in microseconds, [None] = retain
    forever. [cache] is the process-wide block cache the table's readers
    share (normally supplied by {!Db}); omitted = uncached reads.
    [obs] is the observability bundle operations report latency spans
    to (also normally supplied by {!Db}); omitted = no instrumentation
    ({!Lt_obs.Obs.noop}). [pool] enables parallel tablet scans: queries
    touching disk through more than one source fan out over its worker
    domains and k-way merge back into key order, byte-identical to the
    sequential path; omitted = sequential scans. *)
val create :
  ?cache:Block.t Lt_cache.Block_cache.t ->
  ?obs:Lt_obs.Obs.t ->
  ?pool:Lt_exec.Pool.t ->
  Lt_vfs.Vfs.t ->
  clock:Lt_util.Clock.t ->
  config:Config.t ->
  dir:string ->
  name:string ->
  Schema.t ->
  ttl:int64 option ->
  t

(** Open an existing table from its descriptor. Unflushed data from a
    previous process is gone, per the durability contract. *)
val open_ :
  ?cache:Block.t Lt_cache.Block_cache.t ->
  ?obs:Lt_obs.Obs.t ->
  ?pool:Lt_exec.Pool.t ->
  Lt_vfs.Vfs.t ->
  clock:Lt_util.Clock.t ->
  config:Config.t ->
  dir:string ->
  name:string ->
  t

(** Flush nothing, close readers. The caller should normally
    [flush_all] first; anything unflushed is lost, which is exactly the
    crash behaviour. *)
val close : t -> unit

val name : t -> string
val dir : t -> string
val schema : t -> Schema.t
val ttl : t -> int64 option
val set_ttl : t -> int64 option -> unit

(** {1 Schema evolution} (§3.5) *)

val add_column : t -> Schema.column -> unit
val widen_column : t -> string -> unit

(** {1 Inserts} *)

(** Insert a batch. Every row must match the schema; a row's timestamp
    may lie in the past or future (§3.1). Raises {!Duplicate_key} on a
    uniqueness violation (rows earlier in the batch stay inserted). *)
val insert : t -> Value.t array list -> unit

(** [insert_report t rows] is {!insert} reporting a mid-batch
    uniqueness violation as data: [Error (landed, msg)] says exactly
    how many leading rows committed before the duplicate (they stay
    inserted), so wire servers can tell clients what not to re-send. *)
val insert_report : t -> Value.t array list -> (unit, int * string) result

val insert_row : t -> Value.t array -> unit

(** {1 Queries} *)

type result = {
  rows : Value.t array list;
  more_available : bool;
      (** the server's own row limit was hit before the client's (§3.5);
          resubmit with the key bound advanced past the last row *)
  scanned : int;  (** rows examined, for the §5.2.4 efficiency metric *)
  profile : Lt_obs.Profile.t option;
      (** per-stage breakdown, present iff the query asked for one *)
}

(** [query ?profile t q] — [~profile:true] additionally measures a
    per-stage {!Lt_obs.Profile.t} (plan/scan/stall times, rows, tablet
    pruning, cache deltas) using the table's own clock; it works even
    when [Config.obs_enabled] is false and never changes the rows
    returned. *)
val query : ?profile:bool -> t -> Query.t -> result

(** Streaming scan (no server row cap). The source holds references on
    the tablets it reads; they release when it is drained. *)
val query_iter : t -> Query.t -> Cursor.source

(** [query_agg t q ~specs] evaluates one row of aggregates over every
    row matching [q]'s key/timestamp bounds ([q]'s direction and limit
    are ignored). Columnar tablets answer whole blocks from footer
    stats where possible and decode only referenced columns otherwise;
    the result is bit-identical to scanning the rows and feeding them
    through {!Agg.feed}, at any layout mix or parallelism setting. *)
val query_agg :
  ?profile:bool ->
  t ->
  Query.t ->
  specs:Agg.spec array ->
  Value.t array * Lt_obs.Profile.t option

(** [latest t prefix] finds the newest row whose key starts with
    [prefix], working backwards through groups of tablets with
    overlapping timespans and consulting Bloom filters (§3.4.5). *)
val latest : t -> Value.t list -> Value.t array option

(** Largest row timestamp ever inserted ([None] if the table has always
    been empty). *)
val max_ts : t -> int64 option

(** {1 Maintenance} *)

(** Freeze and flush every memtable (with dependency closures).

    Explicit durability is group-committed: concurrent [flush_all] /
    {!flush_before} callers share one flush round — and its fsyncs —
    instead of queueing identical rounds; a caller whose inserts are
    already covered by a completed round returns immediately. Led and
    joined commits are counted as [lt_group_commit_total{mode}]. *)
val flush_all : t -> unit

(** The §4.1.2 proposed extension: returns once every row with
    timestamp [<= ts] inserted before the call is durable. Rides the
    same group-commit round as {!flush_all} (which covers every
    timestamp, so the guarantee holds a fortiori). *)
val flush_before : t -> ts:int64 -> unit

(** One merge per the policy; [true] if a merge happened. *)
val merge_step : t -> bool

(** Reclaim tablets whose rows have all expired; returns how many. *)
val expire : t -> int

(** [delete_prefix t prefix] bulk-deletes every row whose key starts
    with [prefix] — the feature §7 describes Meraki building "to
    simplify compliance with regional privacy laws" (e.g. purge one
    customer). Tablets fully inside the range are unlinked; straddling
    tablets are rewritten without the range; memtables are filtered.
    Atomic via one descriptor update. Returns rows deleted.
    @raise Schema.Invalid on a prefix/type mismatch. *)
val delete_prefix : t -> Value.t list -> int

(** Age-based freezes + pending flushes + merges to fixpoint + expiry —
    what the background maintenance thread runs each tick. *)
val maintenance : t -> unit

(** {1 Introspection} *)

val tablet_count : t -> int
val memtable_count : t -> int

(** Per-tablet metadata, in timespan order. *)
val tablets : t -> Descriptor.tablet_meta list

(** Operation counters; the [cache] fields reflect the shared
    process-wide block cache (identical across a {!Db}'s tables). *)
val stats : t -> Stats.snapshot

(** Total bytes of on-disk tablets. *)
val disk_size : t -> int
