open Lt_util
module Vfs = Lt_vfs.Vfs

type tablet_meta = {
  id : int;
  file : string;
  min_ts : int64;
  max_ts : int64;
  min_key : string;
  max_key : string;
  row_count : int;
  size : int;
  columnar : bool;
}

type t = {
  schema : Schema.t;
  ttl : int64 option;
  next_id : int;
  tablets : tablet_meta list;
}

let file_name = "DESCRIPTOR"

let magic = 0x4C54444553433031L (* "LTDESC01" *)

let tablet_file id = Printf.sprintf "%06d.tab" id

let compare_meta a b =
  match Int64.compare a.min_ts b.min_ts with
  | 0 -> Int.compare a.id b.id
  | c -> c

let normalize t = { t with tablets = List.sort compare_meta t.tablets }

let encode t =
  let buf = Buffer.create 1024 in
  Binio.put_i64 buf magic;
  Schema.encode buf t.schema;
  (match t.ttl with
  | None -> Binio.put_u8 buf 0
  | Some ttl ->
      Binio.put_u8 buf 1;
      Binio.put_i64 buf ttl);
  Binio.put_varint buf t.next_id;
  Binio.put_varint buf (List.length t.tablets);
  List.iter
    (fun m ->
      Binio.put_varint buf m.id;
      Binio.put_string buf m.file;
      Binio.put_i64 buf m.min_ts;
      Binio.put_i64 buf m.max_ts;
      Binio.put_string buf m.min_key;
      Binio.put_string buf m.max_key;
      Binio.put_varint buf m.row_count;
      Binio.put_varint buf m.size;
      Binio.put_u8 buf (if m.columnar then 1 else 0))
    t.tablets;
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 4) in
  Buffer.add_string out body;
  Binio.put_i32 out (Crc32c.string body);
  Buffer.contents out

let decode data =
  if String.length data < 12 then raise (Binio.Corrupt "descriptor: too short");
  let body_len = String.length data - 4 in
  let crc_cur = Binio.cursor ~pos:body_len data in
  let crc = Binio.get_i32 crc_cur in
  if Crc32c.string ~len:body_len data <> crc then
    raise (Binio.Corrupt "descriptor: checksum mismatch");
  let cur = Binio.cursor data in
  if Binio.get_i64 cur <> magic then raise (Binio.Corrupt "descriptor: bad magic");
  let schema = Schema.decode cur in
  let ttl =
    match Binio.get_u8 cur with
    | 0 -> None
    | 1 -> Some (Binio.get_i64 cur)
    | _ -> raise (Binio.Corrupt "descriptor: bad ttl tag")
  in
  let next_id = Binio.get_varint cur in
  let n = Binio.get_varint cur in
  let tablets =
    List.init n (fun _ ->
        let id = Binio.get_varint cur in
        let file = Binio.get_string cur in
        let min_ts = Binio.get_i64 cur in
        let max_ts = Binio.get_i64 cur in
        let min_key = Binio.get_string cur in
        let max_key = Binio.get_string cur in
        let row_count = Binio.get_varint cur in
        let size = Binio.get_varint cur in
        let columnar =
          match Binio.get_u8 cur with
          | 0 -> false
          | 1 -> true
          | _ -> raise (Binio.Corrupt "descriptor: bad layout tag")
        in
        { id; file; min_ts; max_ts; min_key; max_key; row_count; size;
          columnar })
  in
  if cur.Binio.pos <> body_len then
    raise (Binio.Corrupt "descriptor: trailing bytes");
  normalize { schema; ttl; next_id; tablets }

let save vfs ~dir t =
  let path = Filename.concat dir file_name in
  let tmp = path ^ ".tmp" in
  let file = Vfs.create vfs tmp in
  (try
     Vfs.append vfs file (encode (normalize t));
     Vfs.fsync vfs file;
     Vfs.close vfs file
   with e ->
     (try Vfs.close vfs file with Vfs.Io_error _ -> ());
     (try Vfs.delete vfs tmp with Vfs.Io_error _ -> ());
     raise e);
  Vfs.rename vfs ~src:tmp ~dst:path;
  (* The rename publishes the new descriptor only once the directory
     entry itself is durable (fsync of the parent dirfd). *)
  Vfs.sync_dir vfs dir

let load vfs ~dir =
  let path = Filename.concat dir file_name in
  decode (Vfs.read_all vfs path)

let exists vfs ~dir = Vfs.exists vfs (Filename.concat dir file_name)
