open Lt_util

type ctype = T_int32 | T_int64 | T_double | T_timestamp | T_string | T_blob

type t =
  | Int32 of int32
  | Int64 of int64
  | Double of float
  | Timestamp of int64
  | String of string
  | Blob of string

let type_of = function
  | Int32 _ -> T_int32
  | Int64 _ -> T_int64
  | Double _ -> T_double
  | Timestamp _ -> T_timestamp
  | String _ -> T_string
  | Blob _ -> T_blob

let type_name = function
  | T_int32 -> "int32"
  | T_int64 -> "int64"
  | T_double -> "double"
  | T_timestamp -> "timestamp"
  | T_string -> "string"
  | T_blob -> "blob"

let type_of_name = function
  | "int32" -> Some T_int32
  | "int64" -> Some T_int64
  | "double" -> Some T_double
  | "timestamp" -> Some T_timestamp
  | "string" -> Some T_string
  | "blob" -> Some T_blob
  | _ -> None

let zero = function
  | T_int32 -> Int32 0l
  | T_int64 -> Int64 0L
  | T_double -> Double 0.0
  | T_timestamp -> Timestamp 0L
  | T_string -> String ""
  | T_blob -> Blob ""

let matches ctype v = type_of v = ctype

let widen ~from ~into v =
  if from = into then Some v
  else
    match (from, into, v) with
    | T_int32, T_int64, Int32 x -> Some (Int64 (Int64.of_int32 x))
    | _ -> None

let compare a b =
  match (a, b) with
  | Int32 x, Int32 y -> Int32.compare x y
  | Int64 x, Int64 y -> Int64.compare x y
  | Double x, Double y -> Float.compare x y
  | Timestamp x, Timestamp y -> Int64.compare x y
  | String x, String y -> String.compare x y
  | Blob x, Blob y -> String.compare x y
  | _ ->
      invalid_arg
        (Printf.sprintf "Value.compare: %s vs %s" (type_name (type_of a))
           (type_name (type_of b)))

let equal a b = compare a b = 0

let pp ppf = function
  | Int32 x -> Format.fprintf ppf "%ld" x
  | Int64 x -> Format.fprintf ppf "%Ld" x
  | Double x -> Format.fprintf ppf "%.17g" x
  | Timestamp x -> Format.fprintf ppf "@%Ld" x
  | String s -> Format.fprintf ppf "%S" s
  | Blob s -> Format.fprintf ppf "x'%s'" (String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s)))))

let to_string v = Format.asprintf "%a" pp v

let encode buf = function
  | Int32 x -> Binio.put_i32 buf x
  | Int64 x -> Binio.put_i64 buf x
  | Double x -> Binio.put_double buf x
  | Timestamp x -> Binio.put_i64 buf x
  | String s -> Binio.put_string buf s
  | Blob s -> Binio.put_string buf s

let encoded_size = function
  | Int32 _ -> 4
  | Int64 _ | Double _ | Timestamp _ -> 8
  | String s | Blob s ->
      let n = String.length s in
      Binio.varint_size n + n

let decode ctype cur =
  match ctype with
  | T_int32 -> Int32 (Binio.get_i32 cur)
  | T_int64 -> Int64 (Binio.get_i64 cur)
  | T_double -> Double (Binio.get_double cur)
  | T_timestamp -> Timestamp (Binio.get_i64 cur)
  | T_string -> String (Binio.get_string cur)
  | T_blob -> Blob (Binio.get_string cur)
