type key_bound = Unbounded | Incl of Value.t list | Excl of Value.t list

type direction = Asc | Desc

type t = {
  key_low : key_bound;
  key_high : key_bound;
  ts_min : int64 option;
  ts_max : int64 option;
  direction : direction;
  limit : int option;
  projection : int list option;
}

let all =
  {
    key_low = Unbounded;
    key_high = Unbounded;
    ts_min = None;
    ts_max = None;
    direction = Asc;
    limit = None;
    projection = None;
  }

let prefix vs = { all with key_low = Incl vs; key_high = Incl vs }

let between ?ts_min ?ts_max q =
  let merge_lo = match (q.ts_min, ts_min) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (max a b)
  in
  let merge_hi = match (q.ts_max, ts_max) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)
  in
  { q with ts_min = merge_lo; ts_max = merge_hi }

let with_direction direction q = { q with direction }

let with_limit limit q = { q with limit = Some limit }

let with_projection cols q = { q with projection = Some cols }

type compiled = { lo : string; hi : string option }

let compile schema q =
  let lo =
    match q.key_low with
    | Unbounded -> Some ""
    | Incl vs -> Some (Key_codec.encode_prefix schema vs)
    | Excl vs -> (
        (* Everything strictly after every key starting with vs. *)
        match Key_codec.prefix_succ (Key_codec.encode_prefix schema vs) with
        | Some s -> Some s
        | None -> None (* no key can follow an all-0xff prefix *))
  in
  let hi =
    match q.key_high with
    | Unbounded -> Some None
    | Incl vs -> Some (Key_codec.prefix_succ (Key_codec.encode_prefix schema vs))
    | Excl vs -> Some (Some (Key_codec.encode_prefix schema vs))
  in
  match (lo, hi) with
  | None, _ -> None
  | Some _, None -> None
  | Some lo, Some hi -> (
      match hi with
      | Some h when String.compare lo h >= 0 -> None
      | _ -> Some { lo; hi })

let pp_bound ppf = function
  | Unbounded -> Format.fprintf ppf "-"
  | Incl vs ->
      Format.fprintf ppf "[%s]"
        (String.concat ", " (List.map Value.to_string vs))
  | Excl vs ->
      Format.fprintf ppf "(%s)"
        (String.concat ", " (List.map Value.to_string vs))

let pp ppf q =
  Format.fprintf ppf "@[key %a .. %a, ts %s .. %s, %s%s@]" pp_bound q.key_low
    pp_bound q.key_high
    (match q.ts_min with None -> "-inf" | Some t -> Int64.to_string t)
    (match q.ts_max with None -> "+inf" | Some t -> Int64.to_string t)
    (match q.direction with Asc -> "asc" | Desc -> "desc")
    (match q.limit with None -> "" | Some n -> Printf.sprintf ", limit %d" n)
