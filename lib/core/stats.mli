(** Per-table operation counters.

    These back the production-metrics figures: rows scanned vs rows
    returned (Figure 9, §5.2.4), insert/query rates (§5.2.3), flush and
    merge activity, and write amplification (§5.1.3).

    Counters are guarded by a private leaf mutex (so {!read} is a
    coherent snapshot even against concurrent writers holding only
    table locks) and are strictly monotonic (every [note_*] adds a
    non-negative delta, asserted in the implementation): of any two
    {!snapshot}s of the same table, the later dominates the earlier
    field by field, so rates may be computed by differencing snapshots.
    Benchmarks that need a clean slate should {!reset} rather than
    recreate the table. *)

type t

val create : unit -> t

(** Zero every counter. Intended for benchmarks measuring a phase in
    isolation; differencing snapshots taken across a [reset] is
    meaningless (monotonicity holds only between resets). *)
val reset : t -> unit

(** Block-cache counters (see {!Lt_cache.Block_cache}). The cache is
    process-wide, shared by every table of a {!Db}, so these fields are
    identical across the tables of one database. All-zero ({!no_cache})
    when the cache is disabled. *)
type cache_snapshot = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_inserted_bytes : int;
  cache_resident_bytes : int;  (** current footprint, not monotonic *)
}

val no_cache : cache_snapshot

type snapshot = {
  rows_inserted : int;
  insert_batches : int;
  rows_returned : int;
  rows_scanned : int;
  queries : int;
  flushes : int;
  flushed_bytes : int;
  merges : int;
  merged_bytes_in : int;
  merged_bytes_out : int;
  tablets_expired : int;
  flush_retries : int;  (** flush attempts requeued after a transient I/O error *)
  tablets_quarantined : int;
      (** corrupt tablets set aside at {!Table.open_} instead of failing the open *)
  blocks_footer_answered : int;
      (** whole blocks whose aggregates came straight from footer stats,
          with no block read or row decode *)
  columns_decoded : int;
      (** columnar column sections decompressed by scans — projection
          and aggregate pushdown keep this below columns-per-block *)
  bytes_written : int;  (** flushes + merge output *)
  cache : cache_snapshot;
}

(** Monotonic snapshot; [cache] defaults to {!no_cache}. *)
val read : ?cache:cache_snapshot -> t -> snapshot

(** Field-wise sum, for aggregating per-shard snapshots of one logical
    table into a cluster-wide snapshot. *)
val add : snapshot -> snapshot -> snapshot

(** Rows scanned per row returned, computed as
    [scanned / max 1 returned] so pure-waste scans (rows scanned but
    none returned) report their full scan count instead of hiding
    behind a placeholder. 0.0 only when nothing was scanned. *)
val scan_ratio : snapshot -> float

(** Bytes written to disk per byte of first-time flush; >= 1. *)
val write_amplification : snapshot -> float

(** Block-cache hits / (hits + misses); 0 when the cache is cold or
    disabled. *)
val cache_hit_ratio : snapshot -> float

val note_insert : t -> rows:int -> unit
val note_query : t -> scanned:int -> returned:int -> unit
val note_flush : t -> bytes:int -> unit
val note_merge : t -> bytes_in:int -> bytes_out:int -> unit
val note_expired : t -> tablets:int -> unit
val note_flush_retry : t -> unit
val note_quarantined : t -> tablets:int -> unit
val note_pushdown : t -> footer_blocks:int -> columns:int -> unit

val pp : Format.formatter -> snapshot -> unit
