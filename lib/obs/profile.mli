(** Per-query execution profile — an EXPLAIN ANALYZE for the LittleTable
    data path. Opt-in via the wire [Query]'s [q_profile] flag (shell
    [.profile on]); when requested the server attaches one [t] per
    result page and the client aggregates pages with {!aggregate}.

    Profiles are measured with the table's own clock and work even when
    [Config.obs_enabled = false] — the flag is an explicit per-query
    opt-in, not ambient instrumentation. Results are byte-identical with
    profiling on and off; only the extra payload differs.

    A router answering a profiled query nests each backend's profile
    under {!p_shards} keyed by ["host:port"], so one profile shows where
    a fan-out spent its time shard by shard. *)

type t = {
  p_plan_us : int64;  (** tablet selection + scan setup *)
  p_scan_us : int64;  (** cursor scan time (sum over parallel workers) *)
  p_stall_us : int64;  (** merge waited on a parallel worker *)
  p_total_us : int64;  (** whole call, first row to exhaustion *)
  p_rows_scanned : int;
  p_rows_returned : int;
  p_tablets : int;  (** tablets actually scanned *)
  p_tablets_pruned : int;  (** disk tablets skipped by range overlap *)
  p_bloom_skips : int;  (** tablets skipped by bloom filter (latest) *)
  p_cache_hits : int;
  p_cache_misses : int;
  p_blocks_footer_answered : int;
      (** whole blocks answered from columnar footer stats, unread *)
  p_columns_decoded : int;
      (** columnar column sections decompressed for this query *)
  p_shards : (string * t) list;  (** router: per-backend sub-profiles *)
}

val empty : t

(** Field-wise sum; [p_shards] entries are merged by label (first-seen
    label order), so per-page profiles of one query aggregate stably. *)
val aggregate : t list -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
