(** Slow-op trace ring: a fixed-size ring buffer of recent operation
    spans, the "what just happened" complement to the aggregate
    {!Metrics} histograms. Every instrumented engine operation records
    a span; spans whose duration meets the slow threshold
    ([Config.slow_op_micros]) are additionally emitted at warning level
    through the ["lt.slowop"] [Logs] source, so a production log
    captures outliers even when nobody is watching [.slow]. *)

type op =
  | Insert
  | Query
  | Latest
  | Flush
  | Merge
  | Stall  (** a parallel-scan merge waited on a worker mid-chunk *)

type span = {
  sp_op : op;
  sp_table : string;
  sp_start_us : int64; (* clock time at operation start *)
  sp_duration_us : int64;
  sp_scanned : int; (* rows scanned; 0 when not applicable *)
  sp_returned : int; (* rows returned / inserted / flushed / merged *)
  sp_tablets : int; (* tablets touched *)
  sp_cache_hits : int;
  sp_cache_misses : int;
}

type t

(** [create ?capacity ~slow_us ()] — [capacity] defaults to 256 spans;
    [slow_us] is the threshold at or above which a span is also logged. *)
val create : ?capacity:int -> slow_us:int64 -> unit -> t

val capacity : t -> int

val slow_us : t -> int64

val set_slow_us : t -> int64 -> unit

(** Total spans ever recorded (not bounded by capacity). *)
val recorded : t -> int

val record : t -> span -> unit

(** Most recent spans, newest first, at most [n] (default: all
    retained). *)
val recent : ?n:int -> t -> span list

(** Most recent spans with [sp_duration_us >= slow_us], newest first,
    at most [n]. *)
val slow : ?n:int -> t -> span list

val op_name : op -> string

val pp_span : Format.formatter -> span -> unit

(** The ["lt.slowop"] log source slow spans are emitted through. *)
val log_src : Logs.src
