(** Slow-op trace ring: a fixed-size ring buffer of recent operation
    spans, the "what just happened" complement to the aggregate
    {!Metrics} histograms. Every instrumented engine operation records
    a span; spans whose duration meets the slow threshold
    ([Config.slow_op_micros]) are additionally emitted at warning level
    through the ["lt.slowop"] [Logs] source, so a production log
    captures outliers even when nobody is watching [.slow].

    Since PR 7 spans optionally carry a {!ctx} — a 128-bit trace id
    plus span/parent ids — so spans recorded in different processes
    (client, router, shards) can be reassembled into one tree by
    [Get_trace] / the shell's [.trace]. *)

type op =
  | Insert
  | Query
  | Latest
  | Flush
  | Merge
  | Stall  (** a parallel-scan merge waited on a worker mid-chunk *)
  | Request  (** server-side handling of one wire request *)
  | Route  (** router-side fan-out + merge of one routed request *)
  | Backend  (** one client/router round trip to a backend *)
  | Failover  (** a read was redirected to a shard's replica *)

(** Propagated trace context. [cx_parent = 0L] marks a root span; span
    ids are never 0. Ids come from a process-wide xorshift64* generator
    seeded from the first caller's {!Lt_util.Clock.t} — deterministic
    under a manual clock, so torture [--replay] stays byte-stable. *)
type ctx = {
  cx_trace_hi : int64;
  cx_trace_lo : int64;
  cx_span : int64;
  cx_parent : int64;
}

type span = {
  sp_op : op;
  sp_table : string;
  sp_start_us : int64; (* clock time at operation start *)
  sp_duration_us : int64;
  sp_scanned : int; (* rows scanned; 0 when not applicable *)
  sp_returned : int; (* rows returned / inserted / flushed / merged *)
  sp_tablets : int; (* tablets touched *)
  sp_cache_hits : int;
  sp_cache_misses : int;
  sp_ctx : ctx option; (* None: span predates tracing / ambient off *)
}

type t

(** {1 Context creation and propagation} *)

(** Re-seed the process-wide id generator (tests; replay harnesses). *)
val seed_ids : int64 -> unit

(** Fresh root context: new 128-bit trace id, new span id, no parent.
    [clock] seeds the id generator on first use only. *)
val new_root : clock:Lt_util.Clock.t -> ctx

(** Child context: same trace id, fresh span id, parent = [ctx]'s span. *)
val child_of : ctx -> ctx

val same_trace : hi:int64 -> lo:int64 -> ctx -> bool

(** 32 lowercase hex chars. *)
val trace_id_hex : ctx -> string

(** Accepts the 32-hex-char form (or up to 16 chars, zero-extended);
    [None] on malformed input. *)
val parse_trace_id : string -> (int64 * int64) option

(** [with_ctx (Some c) f] installs [c] as the calling thread's ambient
    context for the duration of [f] (restoring the previous one after,
    exception-safe); [with_ctx None f] is just [f ()]. *)
val with_ctx : ctx option -> (unit -> 'a) -> 'a

(** The calling thread's ambient context, if any. *)
val current : unit -> ctx option

(** {1 The ring} *)

(** [create ?capacity ~slow_us ()] — [capacity] defaults to 256 spans
    ([Config.trace_capacity] raises it to 1024 for servers; routers
    need deeper history to reassemble fan-outs); [slow_us] is the
    threshold at or above which a span is also logged. *)
val create : ?capacity:int -> slow_us:int64 -> unit -> t

val capacity : t -> int

val slow_us : t -> int64

val set_slow_us : t -> int64 -> unit

(** Total spans ever recorded (not bounded by capacity). *)
val recorded : t -> int

val record : t -> span -> unit

(** Most recent spans, newest first, at most [n] (default: all
    retained), optionally only those for [table]. *)
val recent : ?n:int -> ?table:string -> t -> span list

(** Most recent spans with [sp_duration_us >= slow_us], newest first,
    at most [n], optionally only those for [table]. *)
val slow : ?n:int -> ?table:string -> t -> span list

(** All retained spans belonging to the trace [(hi, lo)], oldest
    first — ready for tree assembly. *)
val find_trace : t -> hi:int64 -> lo:int64 -> span list

val op_name : op -> string

val pp_span : Format.formatter -> span -> unit

(** The ["lt.slowop"] log source slow spans are emitted through. *)
val log_src : Logs.src
