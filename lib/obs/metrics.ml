(* Metrics registry. See metrics.mli for the model.

   Layout: a registry holds families keyed by metric name; a family
   holds children keyed by its canonical (sorted) label string. All
   hot-path state lives in the child: one mutex plus a handful of
   mutable fields, so concurrent observations on different series never
   contend. The registry-wide mutex only guards family/child creation
   and collector registration — never the observation path. *)

type kind = K_counter | K_gauge | K_histogram

type child = {
  c_labels : (string * string) list; (* sorted by label name *)
  c_mutex : Mutex.t;
  c_enabled : bool ref; (* shared with the registry *)
  mutable c_count : int; (* counter value / histogram observation count *)
  mutable c_fval : float; (* gauge value / histogram sum *)
  mutable c_max : float;
  c_bucket_counts : int array; (* histogram only: per-bucket + final +Inf *)
  c_bounds : float array; (* histogram only: upper bounds, no +Inf *)
}

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_bounds : float array;
  f_children : (string, child) Hashtbl.t;
}

type registry = {
  r_enabled : bool ref;
  r_mutex : Mutex.t;
  r_families : (string, family) Hashtbl.t;
  mutable r_collectors : (unit -> sample list) list; (* reversed *)
}

and sample = {
  s_name : string;
  s_help : string;
  s_kind : [ `Counter | `Gauge ];
  s_labels : (string * string) list;
  s_value : float;
}

let create_registry ?(enabled = true) () =
  { r_enabled = ref enabled;
    r_mutex = Mutex.create ();
    r_families = Hashtbl.create 32;
    r_collectors = [] }

let set_enabled r b = r.r_enabled := b
let enabled r = !(r.r_enabled)

let with_lock = Lt_util.Mutexes.with_lock

let sort_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Canonical identity of a label set within a family. The '\001'
   separator cannot appear in reasonable label text. *)
let label_key labels =
  String.concat "\001" (List.map (fun (k, v) -> k ^ "\001" ^ v) labels)

let family r ~name ~help ~kind ~bounds =
  with_lock r.r_mutex (fun () ->
      match Hashtbl.find_opt r.r_families name with
      | Some f ->
          if f.f_kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %s already registered with another kind"
                 name);
          if kind = K_histogram && f.f_bounds <> bounds then
            invalid_arg
              (Printf.sprintf
                 "Metrics: histogram %s already registered with other buckets"
                 name);
          f
      | None ->
          let f =
            { f_name = name; f_help = help; f_kind = kind; f_bounds = bounds;
              f_children = Hashtbl.create 4 }
          in
          Hashtbl.add r.r_families name f;
          f)

let child r f labels =
  let labels = sort_labels labels in
  let key = label_key labels in
  with_lock r.r_mutex (fun () ->
      match Hashtbl.find_opt f.f_children key with
      | Some c -> c
      | None ->
          let nbuckets =
            if f.f_kind = K_histogram then Array.length f.f_bounds + 1 else 0
          in
          let c =
            { c_labels = labels;
              c_mutex = Mutex.create ();
              c_enabled = r.r_enabled;
              c_count = 0;
              c_fval = 0.0;
              c_max = 0.0;
              c_bucket_counts = Array.make nbuckets 0;
              c_bounds = f.f_bounds }
          in
          Hashtbl.add f.f_children key c;
          c)

module Counter = struct
  type t = child

  let inc c n =
    if n < 0 then invalid_arg "Metrics.Counter.inc: negative";
    if !(c.c_enabled) then
      with_lock c.c_mutex (fun () -> c.c_count <- c.c_count + n)

  let value c = with_lock c.c_mutex (fun () -> c.c_count)
end

module Gauge = struct
  type t = child

  let set c v =
    if !(c.c_enabled) then with_lock c.c_mutex (fun () -> c.c_fval <- v)

  let value c = with_lock c.c_mutex (fun () -> c.c_fval)
end

module Histogram = struct
  type t = child

  (* 1-2-5 series, 1 µs .. 60 s, in seconds. Written out literally so
     the boundaries are exact and stable across builds. *)
  let default_buckets =
    [| 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
       1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 60.0
    |]

  (* Index of the first bound >= v, or Array.length bounds for +Inf. *)
  let bucket_index bounds v =
    let n = Array.length bounds in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let observe c v =
    if !(c.c_enabled) then begin
      let i = bucket_index c.c_bounds v in
      with_lock c.c_mutex (fun () ->
          c.c_bucket_counts.(i) <- c.c_bucket_counts.(i) + 1;
          c.c_count <- c.c_count + 1;
          c.c_fval <- c.c_fval +. v;
          if v > c.c_max then c.c_max <- v)
    end

  let observe_us c us = observe c (Int64.to_float us *. 1e-6)

  let count c = with_lock c.c_mutex (fun () -> c.c_count)
  let sum c = with_lock c.c_mutex (fun () -> c.c_fval)
  let max_value c = with_lock c.c_mutex (fun () -> c.c_max)
  let buckets c = Array.copy c.c_bounds

  let bucket_counts c =
    with_lock c.c_mutex (fun () -> Array.copy c.c_bucket_counts)

  let percentile c q =
    with_lock c.c_mutex (fun () ->
        if c.c_count = 0 then 0.0
        else begin
          let q = Float.max 0.0 (Float.min 1.0 q) in
          let target = q *. float_of_int c.c_count in
          let nbounds = Array.length c.c_bounds in
          let rec find i cum =
            if i >= nbounds then c.c_max
            else
              let cum' = cum + c.c_bucket_counts.(i) in
              if float_of_int cum' >= target && c.c_bucket_counts.(i) > 0 then begin
                let lower = if i = 0 then 0.0 else c.c_bounds.(i - 1) in
                let upper = c.c_bounds.(i) in
                let frac =
                  (target -. float_of_int cum)
                  /. float_of_int c.c_bucket_counts.(i)
                in
                let v = lower +. (frac *. (upper -. lower)) in
                Float.min v c.c_max
              end
              else find (i + 1) cum'
          in
          find 0 0
        end)

  let p50 c = percentile c 0.5
  let p90 c = percentile c 0.9
  let p99 c = percentile c 0.99

  let merge_into ~into src =
    if into.c_bounds <> src.c_bounds then
      invalid_arg "Metrics.Histogram.merge_into: bucket bounds differ";
    let counts, n, s, m =
      with_lock src.c_mutex (fun () ->
          (Array.copy src.c_bucket_counts, src.c_count, src.c_fval, src.c_max))
    in
    with_lock into.c_mutex (fun () ->
        Array.iteri
          (fun i v ->
            into.c_bucket_counts.(i) <- into.c_bucket_counts.(i) + v)
          counts;
        into.c_count <- into.c_count + n;
        into.c_fval <- into.c_fval +. s;
        if m > into.c_max then into.c_max <- m)
end

let counter r ?(help = "") ?(labels = []) name =
  let f = family r ~name ~help ~kind:K_counter ~bounds:[||] in
  child r f labels

let gauge r ?(help = "") ?(labels = []) name =
  let f = family r ~name ~help ~kind:K_gauge ~bounds:[||] in
  child r f labels

let histogram r ?(help = "") ?(buckets = Histogram.default_buckets)
    ?(labels = []) name =
  let f = family r ~name ~help ~kind:K_histogram ~bounds:buckets in
  child r f labels

let register_collector r fn =
  with_lock r.r_mutex (fun () -> r.r_collectors <- fn :: r.r_collectors)

(* ---- Prometheus text exposition (format 0.0.4) ---- *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | ch -> Buffer.add_char buf ch)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | ch -> Buffer.add_char buf ch)
    v;
  Buffer.contents buf

(* Stable float text: integers render bare, everything else with enough
   digits to round-trip the bucket bounds ("1e-06", "0.001", ...). *)
let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let render_labels buf labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let render_header buf name help typ =
  if help <> "" then begin
    Buffer.add_string buf "# HELP ";
    Buffer.add_string buf name;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (escape_help help);
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf "# TYPE ";
  Buffer.add_string buf name;
  Buffer.add_char buf ' ';
  Buffer.add_string buf typ;
  Buffer.add_char buf '\n'

let render_sample buf name ?(extra = []) labels value =
  Buffer.add_string buf name;
  render_labels buf (labels @ extra);
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let render_child buf f (c : child) =
  (* Snapshot under the child lock, format outside it. *)
  let labels, count, fval, bucket_counts =
    with_lock c.c_mutex (fun () ->
        (c.c_labels, c.c_count, c.c_fval, Array.copy c.c_bucket_counts))
  in
  match f.f_kind with
  | K_counter -> render_sample buf f.f_name labels (string_of_int count)
  | K_gauge -> render_sample buf f.f_name labels (fmt_float fval)
  | K_histogram ->
      let cum = ref 0 in
      Array.iteri
        (fun i bound ->
          cum := !cum + bucket_counts.(i);
          render_sample buf (f.f_name ^ "_bucket")
            ~extra:[ ("le", fmt_float bound) ]
            labels (string_of_int !cum))
        f.f_bounds;
      render_sample buf (f.f_name ^ "_bucket")
        ~extra:[ ("le", "+Inf") ]
        labels (string_of_int count);
      render_sample buf (f.f_name ^ "_sum") labels (fmt_float fval);
      render_sample buf (f.f_name ^ "_count") labels (string_of_int count)

(* ---- Snapshots and federation ----------------------------------------- *)

type snap_child = {
  sn_labels : (string * string) list; (* sorted by label name *)
  sn_count : int; (* histogram observation count *)
  sn_fval : float; (* counter/gauge value / histogram sum *)
  sn_max : float;
  sn_buckets : int array; (* per-bucket counts incl. +Inf; [||] otherwise *)
}

type snap_family = {
  sn_name : string;
  sn_help : string;
  sn_kind : kind;
  sn_bounds : float array;
  sn_children : snap_child list;
}

type snapshot = snap_family list

let snapshot r =
  let families, collectors =
    with_lock r.r_mutex (fun () ->
        let fs = Hashtbl.fold (fun _ f acc -> f :: acc) r.r_families [] in
        (fs, List.rev r.r_collectors))
  in
  let snap_of_family f =
    let children =
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) f.f_children []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map (fun (_, c) ->
             let labels, count, fval, mx, buckets =
               with_lock c.c_mutex (fun () ->
                   ( c.c_labels, c.c_count, c.c_fval, c.c_max,
                     Array.copy c.c_bucket_counts ))
             in
             let fval =
               (* Counters keep their value in c_count; surface it as the
                  float so federation sums one field per kind. *)
               if f.f_kind = K_counter then float_of_int count else fval
             in
             { sn_labels = labels;
               sn_count = count;
               sn_fval = fval;
               sn_max = mx;
               sn_buckets = buckets })
    in
    { sn_name = f.f_name;
      sn_help = f.f_help;
      sn_kind = f.f_kind;
      sn_bounds = Array.copy f.f_bounds;
      sn_children = children }
  in
  let direct = List.map snap_of_family families in
  (* Collector samples (Stats counters etc.) become synthetic families so
     a snapshot covers everything a text scrape would. *)
  let samples = List.concat_map (fun fn -> fn ()) collectors in
  let by_name : (string, sample list ref) Hashtbl.t = Hashtbl.create 16 in
  let names = ref [] in
  List.iter
    (fun s ->
      match Hashtbl.find_opt by_name s.s_name with
      | Some l -> l := s :: !l
      | None ->
          Hashtbl.add by_name s.s_name (ref [ s ]);
          names := s.s_name :: !names)
    samples;
  let collected =
    List.rev_map
      (fun name ->
        let ss = List.rev !(Hashtbl.find by_name name) in
        let first = List.hd ss in
        { sn_name = name;
          sn_help = first.s_help;
          sn_kind =
            (match first.s_kind with
            | `Counter -> K_counter
            | `Gauge -> K_gauge);
          sn_bounds = [||];
          sn_children =
            List.map
              (fun s ->
                { sn_labels = sort_labels s.s_labels;
                  sn_count = 0;
                  sn_fval = s.s_value;
                  sn_max = 0.0;
                  sn_buckets = [||] })
              ss })
      !names
  in
  List.sort
    (fun a b -> String.compare a.sn_name b.sn_name)
    (direct @ collected)

let render_snap_child buf name kind bounds ?(extra = []) c =
  match kind with
  | K_counter | K_gauge ->
      render_sample buf name ~extra c.sn_labels (fmt_float c.sn_fval)
  | K_histogram ->
      let cum = ref 0 in
      Array.iteri
        (fun i bound ->
          cum := !cum + c.sn_buckets.(i);
          render_sample buf (name ^ "_bucket")
            ~extra:(("le", fmt_float bound) :: extra)
            c.sn_labels (string_of_int !cum))
        bounds;
      render_sample buf (name ^ "_bucket")
        ~extra:(("le", "+Inf") :: extra)
        c.sn_labels (string_of_int c.sn_count);
      render_sample buf (name ^ "_sum") ~extra c.sn_labels (fmt_float c.sn_fval);
      render_sample buf (name ^ "_count") ~extra c.sn_labels
        (string_of_int c.sn_count)

let merge_snap_children children =
  let tbl : (string, snap_child ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun c ->
      let key = label_key c.sn_labels in
      match Hashtbl.find_opt tbl key with
      | None ->
          order := key :: !order;
          Hashtbl.add tbl key (ref { c with sn_buckets = Array.copy c.sn_buckets })
      | Some acc ->
          let a = !acc in
          let buckets =
            if Array.length a.sn_buckets = Array.length c.sn_buckets then begin
              let b = Array.copy a.sn_buckets in
              Array.iteri (fun i v -> b.(i) <- b.(i) + v) c.sn_buckets;
              b
            end
            else a.sn_buckets
          in
          acc :=
            { a with
              sn_count = a.sn_count + c.sn_count;
              sn_fval = a.sn_fval +. c.sn_fval;
              sn_max = Float.max a.sn_max c.sn_max;
              sn_buckets = buckets })
    children;
  List.rev_map (fun key -> !(Hashtbl.find tbl key)) !order
  |> List.sort (fun a b ->
         String.compare (label_key a.sn_labels) (label_key b.sn_labels))

(* Federated exposition: for every family present in any source, emit
   (a) aggregate children merged across sources — cluster-wide totals
   and mergeable histograms — and (b) each source's children again with
   a [shard=<label>] label for the per-shard breakdown. Sources whose
   kind or histogram bounds disagree with the first occurrence are
   skipped for that family (federation never guesses at semantics). *)
let render_federated sources =
  let tbl :
      (string, snap_family * (string * snap_family) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let names = ref [] in
  List.iter
    (fun (shard, snap) ->
      List.iter
        (fun fam ->
          match Hashtbl.find_opt tbl fam.sn_name with
          | None ->
              names := fam.sn_name :: !names;
              Hashtbl.add tbl fam.sn_name (fam, ref [ (shard, fam) ])
          | Some (proto, acc) ->
              if proto.sn_kind = fam.sn_kind && proto.sn_bounds = fam.sn_bounds
              then acc := (shard, fam) :: !acc)
        snap)
    sources;
  let names = List.sort String.compare !names in
  let buf = Buffer.create 8192 in
  List.iter
    (fun name ->
      let proto, acc = Hashtbl.find tbl name in
      let occurrences = List.rev !acc in
      let typ =
        match proto.sn_kind with
        | K_counter -> "counter"
        | K_gauge -> "gauge"
        | K_histogram -> "histogram"
      in
      render_header buf name proto.sn_help typ;
      let all_children =
        List.concat_map (fun (_, fam) -> fam.sn_children) occurrences
      in
      List.iter
        (fun c -> render_snap_child buf name proto.sn_kind proto.sn_bounds c)
        (merge_snap_children all_children);
      List.iter
        (fun (shard, fam) ->
          List.iter
            (fun c ->
              render_snap_child buf name proto.sn_kind proto.sn_bounds
                ~extra:[ ("shard", shard) ]
                c)
            fam.sn_children)
        occurrences)
    names;
  Buffer.contents buf

let render r =
  let families, collectors =
    with_lock r.r_mutex (fun () ->
        let fs = Hashtbl.fold (fun _ f acc -> f :: acc) r.r_families [] in
        (fs, List.rev r.r_collectors))
  in
  let families =
    List.sort (fun a b -> String.compare a.f_name b.f_name) families
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      let typ =
        match f.f_kind with
        | K_counter -> "counter"
        | K_gauge -> "gauge"
        | K_histogram -> "histogram"
      in
      render_header buf f.f_name f.f_help typ;
      let children =
        Hashtbl.fold (fun k c acc -> (k, c) :: acc) f.f_children []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter (fun (_, c) -> render_child buf f c) children)
    families;
  (* Collector samples: gather all, group by name preserving first-seen
     order within each collector, then sort families by name. *)
  let samples = List.concat_map (fun fn -> fn ()) collectors in
  let by_name : (string, sample list ref) Hashtbl.t = Hashtbl.create 16 in
  let names = ref [] in
  List.iter
    (fun s ->
      match Hashtbl.find_opt by_name s.s_name with
      | Some l -> l := s :: !l
      | None ->
          Hashtbl.add by_name s.s_name (ref [ s ]);
          names := s.s_name :: !names)
    samples;
  let names = List.sort String.compare !names in
  List.iter
    (fun name ->
      let ss = List.rev !(Hashtbl.find by_name name) in
      let first = List.hd ss in
      let typ = match first.s_kind with `Counter -> "counter" | `Gauge -> "gauge" in
      render_header buf name first.s_help typ;
      List.iter
        (fun s ->
          render_sample buf name (sort_labels s.s_labels) (fmt_float s.s_value))
        ss)
    names;
  Buffer.contents buf
