type t = {
  p_plan_us : int64;
  p_scan_us : int64;
  p_stall_us : int64;
  p_total_us : int64;
  p_rows_scanned : int;
  p_rows_returned : int;
  p_tablets : int;
  p_tablets_pruned : int;
  p_bloom_skips : int;
  p_cache_hits : int;
  p_cache_misses : int;
  p_blocks_footer_answered : int;
  p_columns_decoded : int;
  p_shards : (string * t) list;
}

let empty =
  { p_plan_us = 0L;
    p_scan_us = 0L;
    p_stall_us = 0L;
    p_total_us = 0L;
    p_rows_scanned = 0;
    p_rows_returned = 0;
    p_tablets = 0;
    p_tablets_pruned = 0;
    p_bloom_skips = 0;
    p_cache_hits = 0;
    p_cache_misses = 0;
    p_blocks_footer_answered = 0;
    p_columns_decoded = 0;
    p_shards = [] }

(* Merge same-labeled shard sub-profiles, preserving first-seen label
   order so repeated pages of one query aggregate stably. *)
let rec merge_shards shards =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (label, p) ->
      match Hashtbl.find_opt tbl label with
      | None ->
          order := label :: !order;
          Hashtbl.replace tbl label [ p ]
      | Some ps -> Hashtbl.replace tbl label (p :: ps))
    shards;
  List.rev_map
    (fun label -> (label, aggregate (List.rev (Hashtbl.find tbl label))))
    !order

and aggregate ps =
  let ( ++ ) = Int64.add in
  List.fold_left
    (fun acc p ->
      { p_plan_us = acc.p_plan_us ++ p.p_plan_us;
        p_scan_us = acc.p_scan_us ++ p.p_scan_us;
        p_stall_us = acc.p_stall_us ++ p.p_stall_us;
        p_total_us = acc.p_total_us ++ p.p_total_us;
        p_rows_scanned = acc.p_rows_scanned + p.p_rows_scanned;
        p_rows_returned = acc.p_rows_returned + p.p_rows_returned;
        p_tablets = acc.p_tablets + p.p_tablets;
        p_tablets_pruned = acc.p_tablets_pruned + p.p_tablets_pruned;
        p_bloom_skips = acc.p_bloom_skips + p.p_bloom_skips;
        p_cache_hits = acc.p_cache_hits + p.p_cache_hits;
        p_cache_misses = acc.p_cache_misses + p.p_cache_misses;
        p_blocks_footer_answered =
          acc.p_blocks_footer_answered + p.p_blocks_footer_answered;
        p_columns_decoded = acc.p_columns_decoded + p.p_columns_decoded;
        p_shards = merge_shards (acc.p_shards @ p.p_shards) })
    empty ps

let ms us = Int64.to_float us /. 1000.0

let rec pp_indent ppf ~indent p =
  let pad = String.make indent ' ' in
  Format.fprintf ppf "%splan    %8.3f ms@." pad (ms p.p_plan_us);
  Format.fprintf ppf
    "%sscan    %8.3f ms  rows scanned=%d returned=%d tablets=%d pruned=%d \
     bloom-skips=%d@."
    pad (ms p.p_scan_us) p.p_rows_scanned p.p_rows_returned p.p_tablets
    p.p_tablets_pruned p.p_bloom_skips;
  Format.fprintf ppf "%sstall   %8.3f ms@." pad (ms p.p_stall_us);
  Format.fprintf ppf "%scache   hits=%d misses=%d@." pad p.p_cache_hits
    p.p_cache_misses;
  Format.fprintf ppf "%spush    blocks_footer_answered=%d columns_decoded=%d@."
    pad p.p_blocks_footer_answered p.p_columns_decoded;
  List.iter
    (fun (label, sub) ->
      Format.fprintf ppf "%sshard %s: total %.3f ms@." pad label
        (ms sub.p_total_us);
      pp_indent ppf ~indent:(indent + 2) sub)
    p.p_shards

let pp ppf p =
  Format.fprintf ppf "profile: total %.3f ms@." (ms p.p_total_us);
  pp_indent ppf ~indent:2 p

let to_string p = Format.asprintf "%a" pp p
