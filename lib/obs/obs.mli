(** The engine-facing observability bundle: one {!Metrics.registry},
    one {!Trace.t} slow-op ring, and the {!Lt_util.Clock.t} that times
    operations — manual clocks make latency tests deterministic.

    A [Db] owns one [t] and threads it down to tables, tablet readers,
    and the network server. Code that runs without a [Db] (unit tests,
    the dump tool, benches) gets {!noop}, whose disabled registry makes
    every instrumentation site a single boolean load.

    Metric naming: every series is prefixed [lt_]; durations are
    [<what>_duration_seconds] histograms labeled by [table] (engine
    ops), [stage] (block reads), or [kind] (wire requests). *)

type t

(** [create ?enabled ?trace_capacity ?slow_op_micros ~clock ()] —
    defaults: enabled, 256-span ring, 100 ms slow threshold. *)
val create :
  ?enabled:bool -> ?trace_capacity:int -> ?slow_op_micros:int64 ->
  clock:Lt_util.Clock.t -> unit -> t

(** A shared disabled instance: observes nothing, retains nothing. *)
val noop : t

val registry : t -> Metrics.registry

val trace : t -> Trace.t

val clock : t -> Lt_util.Clock.t

val enabled : t -> bool

(** Clock time in microseconds, or [0L] when disabled (so a disabled
    timing site costs one load and no clock read). *)
val now_us : t -> int64

(** [record_op t ~hist ~op ~table ~t0 ... ()] — close the span opened
    at [t0] (a {!now_us} result): observe the duration on [hist],
    push a {!Trace.span} onto the ring (logging it if slow). No-op
    when disabled. When [ctx] is omitted the span attaches to the
    calling thread's ambient {!Trace.ctx} (if any) as a fresh child;
    pass [ctx] to pin an exact context (servers recording the request
    span itself). *)
val record_op :
  t -> hist:Metrics.Histogram.t -> op:Trace.op -> table:string ->
  t0:int64 -> ?ctx:Trace.ctx -> ?scanned:int -> ?returned:int ->
  ?tablets:int -> ?cache_hits:int -> ?cache_misses:int -> unit -> unit

(** Fresh root {!Trace.ctx} for an outbound request, [None] when
    disabled. *)
val root_ctx : t -> Trace.ctx option

(** Per-table histograms for the engine operations plus the
    parallel-scan instruments, all labeled [{table="<name>"}]. *)
type table_instruments = {
  h_insert : Metrics.Histogram.t; (* lt_insert_duration_seconds *)
  h_query : Metrics.Histogram.t; (* lt_query_duration_seconds *)
  h_latest : Metrics.Histogram.t; (* lt_latest_duration_seconds *)
  h_flush : Metrics.Histogram.t; (* lt_flush_duration_seconds *)
  h_merge : Metrics.Histogram.t; (* lt_merge_duration_seconds *)
  h_fanout : Metrics.Histogram.t;
      (* lt_parallel_scan_fanout — sources staged per parallel scan *)
  h_worker_scan : Metrics.Histogram.t;
      (* lt_worker_scan_duration_seconds — producer-side scan time *)
  h_stall : Metrics.Histogram.t;
      (* lt_merge_stall_duration_seconds — merge waited on a worker *)
}

val table_instruments : t -> table:string -> table_instruments

(** [lt_block_stage_duration_seconds{stage="read"}] — one tablet-file
    pread. *)
val block_read_hist : t -> Metrics.Histogram.t

(** [lt_block_stage_duration_seconds{stage="decompress"}] — frame
    decode + block decompression. *)
val block_decompress_hist : t -> Metrics.Histogram.t

(** [lt_group_commit_total{table,mode}] — explicit durability commits
    ([Table.flush_all] / [flush_before]), [mode="led"] when the caller
    ran the flush round itself, [mode="joined"] when it shared a round
    (and its fsyncs) already in flight. *)
val group_commit : t -> table:string -> mode:string -> Metrics.Counter.t

(** [lt_request_duration_seconds{kind="<request>"}] — server-side wire
    request round-trip. *)
val request_hist : t -> kind:string -> Metrics.Histogram.t

(** {1 Cluster instruments} (used by [Lt_cluster] and {!Lt_net}) *)

(** [lt_router_fanout] — backends contacted per routed request. *)
val router_fanout_hist : t -> Metrics.Histogram.t

(** [lt_router_backend_duration_seconds{backend="<host:port>"}] — one
    backend round trip as observed by the router. *)
val backend_hist : t -> backend:string -> Metrics.Histogram.t

(** [lt_router_backend_requests_total{backend,kind}] — requests the
    router forwarded to each backend. *)
val backend_requests : t -> backend:string -> kind:string -> Metrics.Counter.t

(** [lt_router_failovers_total{backend}] — reads redirected to a shard's
    replica after its primary became unreachable. *)
val failovers : t -> backend:string -> Metrics.Counter.t

(** [lt_client_reconnects_total{peer="<host:port>"}] — connection
    (re-)establishment attempts by {!Lt_net.Client}. *)
val client_reconnects : t -> peer:string -> Metrics.Counter.t

(** Render the registry as Prometheus text. *)
val render : t -> string
