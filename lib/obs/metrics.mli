(** Metrics registry: labeled counters, gauges, and latency histograms
    with Prometheus text exposition.

    The paper's evaluation leans on production metrics LittleTable
    exposed at Meraki — insert/query rates and latency distributions
    (§5.2.1–§5.2.4) — which monotonic counters alone cannot report.
    This registry is the engine-wide home for those series: every
    instrument belongs to a {e family} (a metric name plus help text)
    and is addressed by a set of label pairs, exactly the Prometheus
    data model.

    Instruments are cheap and thread-safe (a mutex per child; an
    observation is a lock, two or three field updates, an unlock).
    A registry can be {e disabled}, turning every observation into a
    single boolean load — the ablation baseline for measuring
    instrumentation overhead ([bench ablation-obs]).

    Requesting an existing family name returns the existing family;
    requesting it with a different instrument kind (or different
    histogram buckets) raises [Invalid_argument]. Requesting an
    existing label set returns the {e same} child, so independently
    obtained handles share one series. *)

type registry

val create_registry : ?enabled:bool -> unit -> registry

(** When disabled, every [inc]/[set]/[observe] is a no-op. *)
val set_enabled : registry -> bool -> unit

val enabled : registry -> bool

module Counter : sig
  type t

  (** Add [n >= 0]. *)
  val inc : t -> int -> unit

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val value : t -> float
end

module Histogram : sig
  type t

  (** Log-spaced 1–2–5 upper bounds from 1 µs to 60 s, in seconds —
      wide enough for a block decompress and a paper-scale 31 ms
      first-row read alike. *)
  val default_buckets : float array

  (** Record a value in seconds. *)
  val observe : t -> float -> unit

  (** Record a duration in integer microseconds. *)
  val observe_us : t -> int64 -> unit

  val count : t -> int

  val sum : t -> float

  (** Largest value observed; 0 when empty. *)
  val max_value : t -> float

  (** [percentile h q] for [q] in [0,1], by linear interpolation within
      the bucket containing rank [q * count] (the +Inf bucket reports
      {!max_value}). Interpolated values are clamped to {!max_value};
      an empty histogram reports 0. *)
  val percentile : t -> float -> float

  val p50 : t -> float

  val p90 : t -> float

  val p99 : t -> float

  (** Upper bounds, excluding +Inf. *)
  val buckets : t -> float array

  (** Per-bucket (non-cumulative) counts; one extra final cell for
      +Inf. *)
  val bucket_counts : t -> int array

  (** Fold [src] into [into] (bucket counts, count, sum, max). The two
      must share bucket bounds.
      @raise Invalid_argument on a bounds mismatch. *)
  val merge_into : into:t -> t -> unit
end

val counter :
  registry -> ?help:string -> ?labels:(string * string) list -> string ->
  Counter.t

val gauge :
  registry -> ?help:string -> ?labels:(string * string) list -> string ->
  Gauge.t

val histogram :
  registry -> ?help:string -> ?buckets:float array ->
  ?labels:(string * string) list -> string -> Histogram.t

(** A point sample contributed by a {!register_collector} callback at
    render time — how existing counter sources (e.g. [Stats] snapshots)
    join the exposition without double bookkeeping. *)
type sample = {
  s_name : string;
  s_help : string;
  s_kind : [ `Counter | `Gauge ];
  s_labels : (string * string) list;
  s_value : float;
}

(** Collectors run (in registration order) on every {!render}, even on a
    disabled registry. Samples sharing a name are emitted as one
    family; collector names must not collide with instrument families. *)
val register_collector : registry -> (unit -> sample list) -> unit

(** Prometheus text exposition (format version 0.0.4): every family
    sorted by name, children sorted by label set, histograms as
    [_bucket]/[_sum]/[_count] series with cumulative [le] buckets. *)
val render : registry -> string

(** {1 Snapshots and federation}

    A snapshot is a plain-data image of a registry — families, label
    sets, counts, sums, raw (non-cumulative) bucket arrays — that can
    cross the wire ([Get_metrics_snapshot]) and be merged elsewhere.
    The router federates its backends by scraping one snapshot each and
    rendering the merge. *)

type kind = K_counter | K_gauge | K_histogram

type snap_child = {
  sn_labels : (string * string) list; (* sorted by label name *)
  sn_count : int; (* histogram observation count *)
  sn_fval : float; (* counter/gauge value / histogram sum *)
  sn_max : float;
  sn_buckets : int array; (* per-bucket counts incl. +Inf; [||] otherwise *)
}

type snap_family = {
  sn_name : string;
  sn_help : string;
  sn_kind : kind;
  sn_bounds : float array; (* histogram upper bounds, no +Inf *)
  sn_children : snap_child list;
}

type snapshot = snap_family list

(** Image of the registry now, collector samples included, families
    sorted by name. Works on a disabled registry (all zeros). *)
val snapshot : registry -> snapshot

(** [render_federated sources] — [sources] pairs a shard label with that
    source's snapshot. For each family: first the {e aggregate} children
    (counters/gauges summed, histogram buckets merged across sources,
    grouped by the original label set), then every source's children
    re-emitted with an added [shard="<label>"] label. Families whose
    kind or histogram bounds disagree with the family's first occurrence
    are skipped for the disagreeing source. *)
val render_federated : (string * snapshot) list -> string
