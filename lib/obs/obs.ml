module Clock = Lt_util.Clock

type t = {
  o_registry : Metrics.registry;
  o_trace : Trace.t;
  o_clock : Clock.t;
}

let create ?(enabled = true) ?(trace_capacity = 256)
    ?(slow_op_micros = Clock.msec 100) ~clock () =
  { o_registry = Metrics.create_registry ~enabled ();
    o_trace = Trace.create ~capacity:trace_capacity ~slow_us:slow_op_micros ();
    o_clock = clock }

let noop = create ~enabled:false ~trace_capacity:1 ~clock:Clock.system ()

let registry t = t.o_registry
let trace t = t.o_trace
let clock t = t.o_clock
let enabled t = Metrics.enabled t.o_registry
let now_us t = if enabled t then Clock.now t.o_clock else 0L

let record_op t ~hist ~op ~table ~t0 ?ctx ?(scanned = 0) ?(returned = 0)
    ?(tablets = 0) ?(cache_hits = 0) ?(cache_misses = 0) () =
  if enabled t then begin
    let now = Clock.now t.o_clock in
    let duration = Int64.max 0L (Int64.sub now t0) in
    Metrics.Histogram.observe_us hist duration;
    let sp_ctx =
      match ctx with
      | Some _ as c -> c
      | None ->
          (* Attach to the ambient request context, if any, as a child
             span — this is how Table/Pscan spans join a wire trace. *)
          Option.map Trace.child_of (Trace.current ())
    in
    Trace.record t.o_trace
      { Trace.sp_op = op;
        sp_table = table;
        sp_start_us = t0;
        sp_duration_us = duration;
        sp_scanned = scanned;
        sp_returned = returned;
        sp_tablets = tablets;
        sp_cache_hits = cache_hits;
        sp_cache_misses = cache_misses;
        sp_ctx }
  end

(* Fresh root context for an outbound request, or [None] when disabled
   so tracing-off stays a boolean load. *)
let root_ctx t = if enabled t then Some (Trace.new_root ~clock:t.o_clock) else None

type table_instruments = {
  h_insert : Metrics.Histogram.t;
  h_query : Metrics.Histogram.t;
  h_latest : Metrics.Histogram.t;
  h_flush : Metrics.Histogram.t;
  h_merge : Metrics.Histogram.t;
  h_fanout : Metrics.Histogram.t;
  h_worker_scan : Metrics.Histogram.t;
  h_stall : Metrics.Histogram.t;
}

let duration_hist t name help ~labels =
  Metrics.histogram t.o_registry ~help ~labels name

let table_instruments t ~table =
  let labels = [ ("table", table) ] in
  { h_insert =
      duration_hist t "lt_insert_duration_seconds"
        "Latency of Table.insert batches." ~labels;
    h_query =
      duration_hist t "lt_query_duration_seconds"
        "Latency of Table.query / query_iter, first call to exhaustion."
        ~labels;
    h_latest =
      duration_hist t "lt_latest_duration_seconds"
        "Latency of Table.latest prefix searches." ~labels;
    h_flush =
      duration_hist t "lt_flush_duration_seconds"
        "Latency of one memtable flush to a tablet." ~labels;
    h_merge =
      duration_hist t "lt_merge_duration_seconds"
        "Latency of one adjacent-pair tablet merge step." ~labels;
    h_fanout =
      Metrics.histogram t.o_registry
        ~help:"Sources staged per parallel tablet scan."
        ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
        ~labels "lt_parallel_scan_fanout";
    h_worker_scan =
      duration_hist t "lt_worker_scan_duration_seconds"
        "Per-worker producer-side scan time within a parallel query."
        ~labels;
    h_stall =
      duration_hist t "lt_merge_stall_duration_seconds"
        "Time the parallel-scan merge spent waiting on a worker." ~labels }

let block_read_hist t =
  duration_hist t "lt_block_stage_duration_seconds"
    "Latency of tablet block read stages." ~labels:[ ("stage", "read") ]

let block_decompress_hist t =
  duration_hist t "lt_block_stage_duration_seconds"
    "Latency of tablet block read stages." ~labels:[ ("stage", "decompress") ]

let group_commit t ~table ~mode =
  Metrics.counter t.o_registry
    ~help:
      "Explicit durability commits, by whether the caller led the flush \
       round or joined one in flight."
    ~labels:[ ("table", table); ("mode", mode) ]
    "lt_group_commit_total"

let request_hist t ~kind =
  duration_hist t "lt_request_duration_seconds"
    "Server-side latency of wire protocol requests."
    ~labels:[ ("kind", kind) ]

(* ---- Cluster router / client instruments ------------------------------ *)

let router_fanout_hist t =
  Metrics.histogram t.o_registry
    ~help:"Backends contacted per routed request."
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
    "lt_router_fanout"

let backend_hist t ~backend =
  duration_hist t "lt_router_backend_duration_seconds"
    "Router-observed latency of one backend round trip."
    ~labels:[ ("backend", backend) ]

let backend_requests t ~backend ~kind =
  Metrics.counter t.o_registry
    ~help:"Requests the router forwarded to each backend."
    ~labels:[ ("backend", backend); ("kind", kind) ]
    "lt_router_backend_requests_total"

let failovers t ~backend =
  Metrics.counter t.o_registry
    ~help:"Reads the router redirected to a shard's replica."
    ~labels:[ ("backend", backend) ]
    "lt_router_failovers_total"

let client_reconnects t ~peer =
  Metrics.counter t.o_registry
    ~help:"Connection (re-)establishment attempts by the client adaptor."
    ~labels:[ ("peer", peer) ]
    "lt_client_reconnects_total"

let render t = Metrics.render t.o_registry
