type op = Insert | Query | Latest | Flush | Merge | Stall

type span = {
  sp_op : op;
  sp_table : string;
  sp_start_us : int64;
  sp_duration_us : int64;
  sp_scanned : int;
  sp_returned : int;
  sp_tablets : int;
  sp_cache_hits : int;
  sp_cache_misses : int;
}

type t = {
  ring : span option array;
  mutable next : int; (* total spans ever recorded; write cursor = next mod capacity *)
  mutable slow_us : int64;
  mutex : Mutex.t;
}

let log_src = Logs.Src.create "lt.slowop" ~doc:"LittleTable slow operations"

module Log = (val Logs.src_log log_src : Logs.LOG)

let create ?(capacity = 256) ~slow_us () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None;
    next = 0;
    slow_us;
    mutex = Mutex.create () }

let capacity t = Array.length t.ring
let slow_us t = t.slow_us
let set_slow_us t v = t.slow_us <- v
let recorded t = t.next

let op_name = function
  | Insert -> "insert"
  | Query -> "query"
  | Latest -> "latest"
  | Flush -> "flush"
  | Merge -> "merge"
  | Stall -> "stall"

let pp_span ppf sp =
  Format.fprintf ppf
    "%-6s %-16s %8Ld us  scanned=%d returned=%d tablets=%d cache=%d/%d"
    (op_name sp.sp_op) sp.sp_table sp.sp_duration_us sp.sp_scanned
    sp.sp_returned sp.sp_tablets sp.sp_cache_hits
    (sp.sp_cache_hits + sp.sp_cache_misses)

let record t sp =
  let slow =
    Lt_util.Mutexes.with_lock t.mutex (fun () ->
        let cap = Array.length t.ring in
        t.ring.(t.next mod cap) <- Some sp;
        t.next <- t.next + 1;
        sp.sp_duration_us >= t.slow_us)
  in
  if slow then Log.warn (fun m -> m "slow op: %a" pp_span sp)

(* Newest-first walk of the retained window. *)
let fold_recent t f =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      let cap = Array.length t.ring in
      let retained = min t.next cap in
      let acc = ref [] in
      for i = 1 to retained do
        match t.ring.((t.next - i + (cap * 2)) mod cap) with
        | Some sp -> if f sp then acc := sp :: !acc
        | None -> ()
      done;
      List.rev !acc)

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let recent ?n t =
  let all = fold_recent t (fun _ -> true) in
  match n with None -> all | Some n -> take n all

let slow ?n t =
  let threshold = t.slow_us in
  let all = fold_recent t (fun sp -> sp.sp_duration_us >= threshold) in
  match n with None -> all | Some n -> take n all
