type op =
  | Insert
  | Query
  | Latest
  | Flush
  | Merge
  | Stall
  | Request
  | Route
  | Backend
  | Failover

type ctx = {
  cx_trace_hi : int64;
  cx_trace_lo : int64;
  cx_span : int64;
  cx_parent : int64;
}

type span = {
  sp_op : op;
  sp_table : string;
  sp_start_us : int64;
  sp_duration_us : int64;
  sp_scanned : int;
  sp_returned : int;
  sp_tablets : int;
  sp_cache_hits : int;
  sp_cache_misses : int;
  sp_ctx : ctx option;
}

type t = {
  ring : span option array;
  mutable next : int; (* total spans ever recorded; write cursor = next mod capacity *)
  mutable slow_us : int64;
  mutex : Mutex.t;
}

let log_src = Logs.Src.create "lt.slowop" ~doc:"LittleTable slow operations"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ---- Trace/span id generation ----------------------------------------- *)

(* One process-wide generator, lazily seeded from the clock of the first
   [new_root] caller. Under a manual clock the seed — and therefore every
   id — is deterministic, which keeps torture [--replay] byte-stable.
   Never [Random]: the clock-discipline lint forbids it, and it would
   desynchronize replays. *)
let id_state : Lt_util.Xorshift.t option ref = ref None

let id_mutex = Mutex.create ()

let seed_ids seed =
  Lt_util.Mutexes.with_lock id_mutex (fun () ->
      id_state := Some (Lt_util.Xorshift.create seed))

(* Ids must be non-zero: 0 is reserved for "no parent". *)
let rec nonzero rng =
  let v = Lt_util.Xorshift.next rng in
  if v = 0L then nonzero rng else v

let fresh_ids ~clock n =
  Lt_util.Mutexes.with_lock id_mutex (fun () ->
      let rng =
        match !id_state with
        | Some rng -> rng
        | None ->
            let rng = Lt_util.Xorshift.create (Lt_util.Clock.now clock) in
            id_state := Some rng;
            rng
      in
      List.init n (fun _ -> nonzero rng))

let new_root ~clock =
  match fresh_ids ~clock 3 with
  | [ hi; lo; sp ] ->
      { cx_trace_hi = hi; cx_trace_lo = lo; cx_span = sp; cx_parent = 0L }
  | _ -> assert false

let child_of parent =
  match fresh_ids ~clock:Lt_util.Clock.system 1 with
  | [ sp ] ->
      { cx_trace_hi = parent.cx_trace_hi;
        cx_trace_lo = parent.cx_trace_lo;
        cx_span = sp;
        cx_parent = parent.cx_span }
  | _ -> assert false

let same_trace ~hi ~lo c = c.cx_trace_hi = hi && c.cx_trace_lo = lo

let trace_id_hex c = Printf.sprintf "%016Lx%016Lx" c.cx_trace_hi c.cx_trace_lo

let parse_trace_id s =
  let s = String.trim s in
  let hex_i64 sub =
    (* [Int64.of_string] with 0x accepts the full unsigned range. *)
    Int64.of_string ("0x" ^ sub)
  in
  if String.length s = 32 then
    match (hex_i64 (String.sub s 0 16), hex_i64 (String.sub s 16 16)) with
    | hi, lo -> Some (hi, lo)
    | exception _ -> None
  else if String.length s > 0 && String.length s <= 16 then
    match hex_i64 s with lo -> Some (0L, lo) | exception _ -> None
  else None

(* ---- Ambient (per-thread) context ------------------------------------- *)

(* Keyed by [Thread.id] rather than a domain-local: threads, not domains,
   carry requests in this codebase, and the lint confines [Domain.*] to
   [lib/exec]. Entries are removed on scope exit so the table stays
   bounded by live, in-scope threads. *)
let ambient : (int, ctx) Hashtbl.t = Hashtbl.create 16

let ambient_mutex = Mutex.create ()

let current () =
  let key = Thread.id (Thread.self ()) in
  Lt_util.Mutexes.with_lock ambient_mutex (fun () ->
      Hashtbl.find_opt ambient key)

let with_ctx ctx f =
  match ctx with
  | None -> f ()
  | Some c ->
      let key = Thread.id (Thread.self ()) in
      let prev =
        Lt_util.Mutexes.with_lock ambient_mutex (fun () ->
            let prev = Hashtbl.find_opt ambient key in
            Hashtbl.replace ambient key c;
            prev)
      in
      Fun.protect
        ~finally:(fun () ->
          Lt_util.Mutexes.with_lock ambient_mutex (fun () ->
              match prev with
              | Some p -> Hashtbl.replace ambient key p
              | None -> Hashtbl.remove ambient key))
        f

(* ---- Ring ------------------------------------------------------------- *)

let create ?(capacity = 256) ~slow_us () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None;
    next = 0;
    slow_us;
    mutex = Mutex.create () }

let capacity t = Array.length t.ring

let slow_us t = Lt_util.Mutexes.with_lock t.mutex (fun () -> t.slow_us)

let set_slow_us t v =
  Lt_util.Mutexes.with_lock t.mutex (fun () -> t.slow_us <- v)

let recorded t = Lt_util.Mutexes.with_lock t.mutex (fun () -> t.next)

let op_name = function
  | Insert -> "insert"
  | Query -> "query"
  | Latest -> "latest"
  | Flush -> "flush"
  | Merge -> "merge"
  | Stall -> "stall"
  | Request -> "request"
  | Route -> "route"
  | Backend -> "backend"
  | Failover -> "failover"

let pp_span ppf sp =
  let ids =
    match sp.sp_ctx with
    | None -> ""
    | Some c -> Printf.sprintf "  trace=%s" (trace_id_hex c)
  in
  Format.fprintf ppf
    "%-8s %-16s %8Ld us  scanned=%d returned=%d tablets=%d cache=%d/%d%s"
    (op_name sp.sp_op) sp.sp_table sp.sp_duration_us sp.sp_scanned
    sp.sp_returned sp.sp_tablets sp.sp_cache_hits
    (sp.sp_cache_hits + sp.sp_cache_misses)
    ids

let record t sp =
  let slow =
    Lt_util.Mutexes.with_lock t.mutex (fun () ->
        let cap = Array.length t.ring in
        t.ring.(t.next mod cap) <- Some sp;
        t.next <- t.next + 1;
        sp.sp_duration_us >= t.slow_us)
  in
  if slow then Log.warn (fun m -> m "slow op: %a" pp_span sp)

(* Newest-first walk of the retained window. *)
let fold_recent t f =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      let cap = Array.length t.ring in
      let retained = min t.next cap in
      let acc = ref [] in
      for i = 1 to retained do
        match t.ring.((t.next - i + (cap * 2)) mod cap) with
        | Some sp -> if f sp then acc := sp :: !acc
        | None -> ()
      done;
      List.rev !acc)

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let table_matches table sp =
  match table with None -> true | Some tbl -> sp.sp_table = tbl

let recent ?n ?table t =
  let all = fold_recent t (table_matches table) in
  match n with None -> all | Some n -> take n all

let slow ?n ?table t =
  let threshold = t.slow_us in
  let all =
    fold_recent t (fun sp ->
        sp.sp_duration_us >= threshold && table_matches table sp)
  in
  match n with None -> all | Some n -> take n all

(* Spans of one trace, oldest first — ready for tree assembly. *)
let find_trace t ~hi ~lo =
  List.rev
    (fold_recent t (fun sp ->
         match sp.sp_ctx with
         | Some c -> same_trace ~hi ~lo c
         | None -> false))
