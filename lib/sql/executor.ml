open Littletable

exception Exec_error of string

let error fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

type backend = {
  b_schema : string -> Schema.t option;
  b_query : string -> Query.t -> Cursor.source;
  b_query_agg : (string -> Query.t -> Agg.spec array -> Value.t array) option;
  b_insert : string -> Value.t array list -> unit;
  b_create : string -> Schema.t -> ttl:int64 option -> unit;
  b_drop : string -> unit;
  b_tables : unit -> string list;
  b_now : unit -> int64;
  b_delete_prefix : string -> Value.t list -> int;
  b_add_column : string -> Schema.column -> unit;
  b_widen_column : string -> string -> unit;
  b_set_ttl : string -> int64 option -> unit;
}

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Done of string

let local_backend db =
  {
    b_schema =
      (fun name -> Option.map Table.schema (Db.find_table db name));
    b_query =
      (fun name q ->
        match Db.find_table db name with
        | Some t -> Table.query_iter t q
        | None -> error "no such table %S" name);
    b_query_agg =
      Some
        (fun name q specs ->
          match Db.find_table db name with
          | Some t -> fst (Table.query_agg t q ~specs)
          | None -> error "no such table %S" name);
    b_insert =
      (fun name rows ->
        match Db.find_table db name with
        | Some t -> (
            try Table.insert t rows
            with Table.Duplicate_key k -> error "duplicate key (%s)" k)
        | None -> error "no such table %S" name);
    b_create =
      (fun name schema ~ttl ->
        match Db.create_table db name schema ~ttl with
        | (_ : Table.t) -> ()
        | exception Invalid_argument msg -> error "%s" msg);
    b_drop =
      (fun name ->
        try Db.drop_table db name with Not_found -> error "no such table %S" name);
    b_tables = (fun () -> Db.table_names db);
    b_now = (fun () -> Lt_util.Clock.now (Db.clock db));
    b_delete_prefix =
      (fun name prefix ->
        match Db.find_table db name with
        | Some t -> (
            try Table.delete_prefix t prefix
            with Schema.Invalid msg -> error "%s" msg)
        | None -> error "no such table %S" name);
    b_add_column =
      (fun name col ->
        match Db.find_table db name with
        | Some t -> (
            try Table.add_column t col
            with Schema.Invalid msg -> error "%s" msg)
        | None -> error "no such table %S" name);
    b_widen_column =
      (fun name cname ->
        match Db.find_table db name with
        | Some t -> (
            try Table.widen_column t cname
            with Schema.Invalid msg -> error "%s" msg)
        | None -> error "no such table %S" name);
    b_set_ttl =
      (fun name ttl ->
        match Db.find_table db name with
        | Some t -> Table.set_ttl t ttl
        | None -> error "no such table %S" name);
  }

let schema_of b name =
  match b.b_schema name with
  | Some s -> s
  | None -> error "no such table %S" name

(* ---- WHERE residuals -------------------------------------------------- *)

let cond_holds (r : Planner.residual) row =
  let c = Value.compare row.(r.Planner.r_col) r.Planner.r_value in
  match r.Planner.r_op with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

(* ---- Aggregation ------------------------------------------------------ *)

(* Accumulators live in the engine ({!Littletable.Agg}) so that rows fed
   here and blocks absorbed from columnar footer stats inside the engine
   can never drift apart. *)

let fn_of_agg = function
  | Ast.Count -> Agg.Count
  | Ast.Sum -> Agg.Sum
  | Ast.Avg -> Agg.Avg
  | Ast.Min -> Agg.Min
  | Ast.Max -> Agg.Max

(* ---- SELECT ------------------------------------------------------------ *)

let run_select b (s : Ast.select) =
  let schema = schema_of b s.Ast.table in
  let plan = Planner.plan_select schema ~now:(b.b_now ()) s in
  let columns = List.map snd plan.Planner.outputs in
  (* Whole-query aggregate pushdown: no grouping and no residual
     filters means the engine can answer the aggregates itself —
     columnar tablets straight from block footers — without streaming a
     single row up here. Grouped or filtered queries still stream. *)
  let pushed_agg =
    if
      plan.Planner.aggregated
      && plan.Planner.group_cols = []
      && plan.Planner.residuals = []
    then b.b_query_agg
    else None
  in
  match pushed_agg with
  | Some query_agg ->
      let specs =
        Array.of_list
          (List.map
             (fun (o, _) ->
               match o with
               | Planner.Out_agg (a, c) ->
                   { Agg.a_fn = fn_of_agg a; a_col = c }
               | Planner.Out_col _ ->
                   (* ungrouped plain columns were rejected by the planner *)
                   assert false)
             plan.Planner.outputs)
      in
      let row = query_agg s.Ast.table plan.Planner.query specs in
      let rows =
        match plan.Planner.post_limit with Some 0 -> [] | _ -> [ row ]
      in
      Rows { columns; rows }
  | None ->
  let src = b.b_query s.Ast.table plan.Planner.query in
  let passes row = List.for_all (fun r -> cond_holds r row) plan.Planner.residuals in
  if not plan.Planner.aggregated then begin
    let out = ref [] and count = ref 0 in
    let limit = match plan.Planner.post_limit with Some n -> n | None -> max_int in
    let rec go () =
      if !count < limit then begin
        match src () with
        | None -> ()
        | Some (_, row) ->
            if passes row then begin
              let projected =
                Array.of_list
                  (List.map
                     (fun (o, _) ->
                       match o with
                       | Planner.Out_col i -> row.(i)
                       | Planner.Out_agg _ -> assert false)
                     plan.Planner.outputs)
              in
              out := projected :: !out;
              incr count
            end;
            go ()
      end
    in
    go ();
    Rows { columns; rows = List.rev !out }
  end
  else begin
    (* Group rows; one accumulator per aggregate output per group. *)
    let module Tbl = Hashtbl in
    let groups : (Value.t list, Agg.acc array * Value.t array) Tbl.t =
      Tbl.create 64
    in
    let order = ref [] in
    let agg_outputs =
      List.filter_map
        (fun (o, _) -> match o with Planner.Out_agg (a, c) -> Some (a, c) | _ -> None)
        plan.Planner.outputs
    in
    let rec consume () =
      match src () with
      | None -> ()
      | Some (_, row) ->
          if passes row then begin
            let key = List.map (fun i -> row.(i)) plan.Planner.group_cols in
            let accs, _ =
              match Tbl.find_opt groups key with
              | Some entry -> entry
              | None ->
                  let entry =
                    ( Array.init (List.length agg_outputs) (fun _ ->
                          Agg.fresh_acc ()),
                      row )
                  in
                  Tbl.add groups key entry;
                  order := key :: !order;
                  entry
            in
            List.iteri
              (fun i (_, col) ->
                Agg.feed accs.(i) (Option.map (fun c -> row.(c)) col))
              agg_outputs
          end;
          consume ()
    in
    consume ();
    (* With no GROUP BY, an aggregate query yields one row even when the
       scan is empty. *)
    if plan.Planner.group_cols = [] && Tbl.length groups = 0 then begin
      let entry =
        ( Array.init (List.length agg_outputs) (fun _ -> Agg.fresh_acc ()),
          [||] )
      in
      Tbl.add groups [] entry;
      order := [ [] ]
    end;
    (* Rows come off the scan in key order; groups keyed on leading key
       columns thus appear in order too. Preserve first-seen order. *)
    let rows =
      List.rev_map
        (fun key ->
          let accs, sample = Tbl.find groups key in
          let agg_idx = ref (-1) in
          Array.of_list
            (List.map
               (fun (o, _) ->
                 match o with
                 | Planner.Out_col i -> sample.(i)
                 | Planner.Out_agg (a, _) ->
                     incr agg_idx;
                     Agg.result (fn_of_agg a) accs.(!agg_idx))
               plan.Planner.outputs))
        !order
    in
    let rows =
      match plan.Planner.post_limit with
      | Some n -> List.filteri (fun i _ -> i < n) rows
      | None -> rows
    in
    Rows { columns; rows }
  end

(* ---- INSERT ------------------------------------------------------------ *)

let run_insert b (i : Ast.insert) =
  let schema = schema_of b i.Ast.insert_table in
  let cols = Schema.columns schema in
  let now = b.b_now () in
  let target_indices =
    match i.Ast.insert_columns with
    | None -> Array.to_list (Array.init (Array.length cols) Fun.id)
    | Some names ->
        List.map
          (fun n ->
            match Schema.find_column schema n with
            | Some idx -> idx
            | None -> error "unknown column %S" n)
          names
  in
  let ts_idx = Schema.ts_index schema in
  let rows =
    List.map
      (fun tuple ->
        if List.length tuple <> List.length target_indices then
          error "INSERT arity mismatch: %d values for %d columns"
            (List.length tuple) (List.length target_indices);
        let row = Array.map (fun c -> c.Schema.default) cols in
        (* An omitted timestamp defaults to the current time (§3.1). *)
        row.(ts_idx) <- Value.Timestamp now;
        List.iter2
          (fun idx lit ->
            row.(idx) <-
              (try Planner.coerce ~now cols.(idx).Schema.ctype lit
               with Planner.Plan_error msg -> error "column %S: %s" cols.(idx).Schema.name msg))
          target_indices tuple;
        row)
      i.Ast.values
  in
  b.b_insert i.Ast.insert_table rows;
  Affected (List.length rows)

(* ---- CREATE ------------------------------------------------------------ *)

let run_create b (c : Ast.create) =
  let now = b.b_now () in
  let columns =
    List.map
      (fun (d : Ast.column_def) ->
        let default =
          match d.Ast.col_default with
          | Some lit -> (
              try Planner.coerce ~now d.Ast.col_type lit
              with Planner.Plan_error msg -> error "column %S: %s" d.Ast.col_name msg)
          | None -> Value.zero d.Ast.col_type
        in
        { Schema.name = d.Ast.col_name; ctype = d.Ast.col_type; default })
      c.Ast.columns
  in
  let schema =
    try Schema.create ~columns ~pkey:c.Ast.pkey
    with Schema.Invalid msg -> error "%s" msg
  in
  b.b_create c.Ast.create_table schema ~ttl:c.Ast.ttl;
  Done (Printf.sprintf "table %s created" c.Ast.create_table)

(* ---- DESCRIBE / SHOW ---------------------------------------------------- *)

let run_describe b name =
  let schema = schema_of b name in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (c : Schema.column) ->
           [|
             Value.String c.Schema.name;
             Value.String (Value.type_name c.Schema.ctype);
             Value.String (Value.to_string c.Schema.default);
             Value.String (if Schema.is_pkey schema i then "key" else "");
           |])
         (Schema.columns schema))
  in
  Rows { columns = [ "column"; "type"; "default"; "key" ]; rows }

(* DELETE maps to the engine's prefix delete: the conditions must be
   equalities on a leading run of primary-key columns (in any order). *)
let run_delete b ~table ~where =
  let schema = schema_of b table in
  let now = b.b_now () in
  let cols = Schema.columns schema in
  let by_col =
    List.map
      (fun (c : Ast.cond) ->
        if c.Ast.op <> Ast.Eq then
          error "DELETE supports only equality conditions (column %S)" c.Ast.col;
        let idx =
          match Schema.find_column schema c.Ast.col with
          | Some i -> i
          | None -> error "unknown column %S" c.Ast.col
        in
        (idx, Planner.coerce ~now cols.(idx).Schema.ctype c.Ast.lit))
      where
  in
  let pkey = Schema.pkey schema in
  let prefix = ref [] in
  let remaining = ref by_col in
  (try
     Array.iter
       (fun key_col ->
         match List.partition (fun (idx, _) -> idx = key_col) !remaining with
         | (_, v) :: _, rest ->
             prefix := v :: !prefix;
             remaining := rest
         | [], _ -> raise Exit)
       pkey
   with Exit -> ());
  if !remaining <> [] then
    error
      "DELETE conditions must cover a leading run of primary-key columns";
  Affected (b.b_delete_prefix table (List.rev !prefix))

let run_alter b ~table ~(action : Ast.alter_action) =
  (match action with
  | Ast.Add_column d ->
      let default =
        match d.Ast.col_default with
        | Some lit -> (
            try Planner.coerce ~now:(b.b_now ()) d.Ast.col_type lit
            with Planner.Plan_error msg -> error "column %S: %s" d.Ast.col_name msg)
        | None -> Value.zero d.Ast.col_type
      in
      b.b_add_column table
        { Schema.name = d.Ast.col_name; ctype = d.Ast.col_type; default }
  | Ast.Widen_column c -> b.b_widen_column table c
  | Ast.Set_ttl ttl -> b.b_set_ttl table ttl);
  Done (Printf.sprintf "table %s altered" table)

let execute_stmt b = function
  | Ast.Select s -> run_select b s
  | Ast.Insert i -> run_insert b i
  | Ast.Create c -> run_create b c
  | Ast.Drop { drop_table; if_exists } -> (
      match b.b_drop drop_table with
      | () -> Done (Printf.sprintf "table %s dropped" drop_table)
      | exception Exec_error _ when if_exists ->
          Done (Printf.sprintf "table %s did not exist" drop_table))
  | Ast.Delete { delete_table; delete_where } ->
      run_delete b ~table:delete_table ~where:delete_where
  | Ast.Alter { alter_table; action } -> run_alter b ~table:alter_table ~action
  | Ast.Show_tables ->
      Rows
        {
          columns = [ "table" ];
          rows = List.map (fun n -> [| Value.String n |]) (b.b_tables ());
        }
  | Ast.Describe name -> run_describe b name

let execute b input = execute_stmt b (Parser.parse input)

let pp_result ppf = function
  | Affected n -> Format.fprintf ppf "%d row%s affected" n (if n = 1 then "" else "s")
  | Done msg -> Format.fprintf ppf "%s" msg
  | Rows { columns; rows } ->
      let cells =
        List.map (fun row -> Array.to_list (Array.map Value.to_string row)) rows
      in
      let widths =
        List.fold_left
          (fun ws row ->
            List.map2 (fun w cell -> max w (String.length cell)) ws row)
          (List.map String.length columns)
          cells
      in
      let pad s w = s ^ String.make (w - String.length s) ' ' in
      let render row = String.concat "  " (List.map2 pad row widths) in
      Format.fprintf ppf "%s@." (render columns);
      Format.fprintf ppf "%s@."
        (String.concat "  " (List.map (fun w -> String.make w '-') widths));
      List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) cells;
      Format.fprintf ppf "(%d row%s)" (List.length rows)
        (if List.length rows = 1 then "" else "s")
