open Littletable

exception Plan_error of string

let error fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt

let coerce ~now ctype lit =
  match (ctype, lit) with
  | Value.T_int32, Ast.L_int v ->
      if v < Int64.of_int32 Int32.min_int || v > Int64.of_int32 Int32.max_int
      then error "%Ld out of int32 range" v
      else Value.Int32 (Int64.to_int32 v)
  | Value.T_int64, Ast.L_int v -> Value.Int64 v
  | Value.T_timestamp, Ast.L_int v -> Value.Timestamp v
  | Value.T_timestamp, Ast.L_now -> Value.Timestamp now
  | Value.T_double, Ast.L_int v -> Value.Double (Int64.to_float v)
  | Value.T_double, Ast.L_float v -> Value.Double v
  | Value.T_string, Ast.L_string s -> Value.String s
  | Value.T_blob, Ast.L_blob b -> Value.Blob b
  | Value.T_blob, Ast.L_string s -> Value.Blob s
  | _ ->
      error "literal %s cannot be used as %s"
        (Format.asprintf "%a" Ast.pp_lit lit)
        (Value.type_name ctype)

type residual = { r_col : int; r_op : Ast.cmp_op; r_value : Value.t }

type output = Out_col of int | Out_agg of Ast.agg * int option

type plan = {
  query : Query.t;
  residuals : residual list;
  group_cols : int list;
  outputs : (output * string) list;
  aggregated : bool;
  post_limit : int option;
}

let column_index schema name =
  match Schema.find_column schema name with
  | Some i -> i
  | None -> error "unknown column %S" name

let agg_name = function
  | Ast.Sum -> "sum"
  | Ast.Count -> "count"
  | Ast.Avg -> "avg"
  | Ast.Min -> "min"
  | Ast.Max -> "max"

let plan_select schema ~now (s : Ast.select) =
  let cols = Schema.columns schema in
  let ts_name = cols.(Schema.ts_index schema).Schema.name in
  (* Coerce every condition once. *)
  let conds =
    List.map
      (fun (c : Ast.cond) ->
        let idx = column_index schema c.Ast.col in
        let v = coerce ~now cols.(idx).Schema.ctype c.Ast.lit in
        (c.Ast.col, idx, c.Ast.op, v))
      s.Ast.where
  in
  (* Timestamp bounds. *)
  let ts_min = ref None and ts_max = ref None and residual = ref [] in
  let tighten_min v =
    ts_min := Some (match !ts_min with None -> v | Some m -> max m v)
  in
  let tighten_max v =
    ts_max := Some (match !ts_max with None -> v | Some m -> min m v)
  in
  let non_ts_conds =
    List.filter
      (fun (name, _, op, v) ->
        if name = ts_name then begin
          let tv = match v with Value.Timestamp t -> t | _ -> assert false in
          (match op with
          | Ast.Eq ->
              tighten_min tv;
              tighten_max tv
          | Ast.Ge -> tighten_min tv
          | Ast.Gt -> tighten_min (Int64.add tv 1L)
          | Ast.Le -> tighten_max tv
          | Ast.Lt -> tighten_max (Int64.sub tv 1L)
          | Ast.Ne -> residual := (name, Schema.ts_index schema, op, v) :: !residual);
          false
        end
        else true)
      conds
  in
  (* Key prefix: a maximal run of leading non-ts key columns with
     equality constraints. *)
  let pkey = Schema.pkey schema in
  let remaining = ref non_ts_conds in
  let prefix = ref [] in
  (try
     Array.iter
       (fun key_col ->
         if key_col = Schema.ts_index schema then raise Exit;
         let eqs, rest =
           List.partition
             (fun (_, idx, op, _) -> idx = key_col && op = Ast.Eq)
             !remaining
         in
         match eqs with
         | [] -> raise Exit
         | (_, _, _, v) :: more ->
             (* Extra equalities on the same column stay as residuals
                (contradictions then filter everything out). *)
             prefix := v :: !prefix;
             remaining := more @ rest)
       pkey
   with Exit -> ());
  let prefix = List.rev !prefix in
  let residuals =
    List.map
      (fun (_, idx, op, v) -> { r_col = idx; r_op = op; r_value = v })
      (!remaining @ !residual)
  in
  (* Projections. *)
  let group_cols = List.map (column_index schema) s.Ast.group_by in
  let has_agg =
    List.exists (fun (e, _) -> match e with Ast.Agg _ -> true | _ -> false)
      s.Ast.projections
  in
  let aggregated = has_agg || group_cols <> [] in
  let outputs =
    if s.Ast.star then
      if aggregated then error "* cannot be combined with aggregation"
      else
        Array.to_list
          (Array.mapi (fun i c -> (Out_col i, c.Schema.name)) cols)
    else
      List.map
        (fun (e, alias) ->
          match e with
          | Ast.Col name ->
              let idx = column_index schema name in
              if aggregated && not (List.mem idx group_cols) then
                error "column %S must appear in GROUP BY" name;
              (Out_col idx, Option.value alias ~default:name)
          | Ast.Agg (a, arg) ->
              let idx = Option.map (column_index schema) arg in
              (match (a, idx) with
              | Ast.Count, _ -> ()
              | (Ast.Sum | Ast.Avg), Some i -> (
                  match cols.(i).Schema.ctype with
                  | Value.T_int32 | Value.T_int64 | Value.T_double -> ()
                  | t ->
                      error "%s over non-numeric column of type %s" (agg_name a)
                        (Value.type_name t))
              | (Ast.Sum | Ast.Avg), None ->
                  error "%s requires a column argument" (agg_name a)
              | (Ast.Min | Ast.Max), None ->
                  error "%s requires a column argument" (agg_name a)
              | (Ast.Min | Ast.Max), Some _ -> ());
              let default_name =
                match arg with
                | Some c -> Printf.sprintf "%s(%s)" (agg_name a) c
                | None -> Printf.sprintf "%s(*)" (agg_name a)
              in
              (Out_agg (a, idx), Option.value alias ~default:default_name)
          | Ast.Lit _ -> error "bare literals are not supported in SELECT")
        s.Ast.projections
  in
  if aggregated && s.Ast.order <> None then
    error "ORDER BY cannot be combined with aggregation";
  let direction =
    match s.Ast.order with
    | Some Ast.Order_desc -> Query.Desc
    | Some Ast.Order_asc | None -> Query.Asc
  in
  (* The limit is pushed into the scan only when nothing downstream can
     drop or combine rows. *)
  let pushable = residuals = [] && not aggregated in
  (* Projection pushdown: every column the executor will touch — outputs,
     residual filters, group keys. [SELECT *] reads everything. Columnar
     tablets then decode only these; row-major data ignores the hint. *)
  let projection =
    if s.Ast.star then None
    else
      let of_output = function
        | Out_col i, _ -> [ i ]
        | Out_agg (_, Some i), _ -> [ i ]
        | Out_agg (_, None), _ -> []
      in
      Some
        (List.sort_uniq Int.compare
           (List.concat_map of_output outputs
           @ List.map (fun r -> r.r_col) residuals
           @ group_cols))
  in
  let query =
    {
      Query.key_low = (if prefix = [] then Query.Unbounded else Query.Incl prefix);
      Query.key_high = (if prefix = [] then Query.Unbounded else Query.Incl prefix);
      Query.ts_min = !ts_min;
      Query.ts_max = !ts_max;
      Query.direction = direction;
      Query.limit = (if pushable then s.Ast.limit else None);
      Query.projection = projection;
    }
  in
  {
    query;
    residuals;
    group_cols;
    outputs;
    aggregated;
    post_limit = (if pushable then None else s.Ast.limit);
  }
