(** SQL execution over an abstract backend.

    The backend record decouples the SQL layer from where the engine
    lives: {!local_backend} binds it to an in-process {!Littletable.Db.t};
    the network client ([Lt_net.Client]) provides its own backend so the
    same SQL surface works over TCP, mirroring how the paper's SQLite
    adaptor talks to the LittleTable server. *)

open Littletable

exception Exec_error of string

type backend = {
  b_schema : string -> Schema.t option;
  b_query : string -> Query.t -> Cursor.source;
      (** streaming scan; the executor drains it fully or up to LIMIT *)
  b_query_agg : (string -> Query.t -> Agg.spec array -> Value.t array) option;
      (** whole-query aggregates evaluated inside the engine (columnar
          footer pushdown); [None] (e.g. over the wire) streams rows and
          aggregates here instead — same results either way *)
  b_insert : string -> Value.t array list -> unit;
  b_create : string -> Schema.t -> ttl:int64 option -> unit;
  b_drop : string -> unit;
  b_tables : unit -> string list;
  b_now : unit -> int64;  (** fills NOW and omitted timestamps *)
  b_delete_prefix : string -> Value.t list -> int;
      (** bulk delete by key prefix; returns rows deleted *)
  b_add_column : string -> Schema.column -> unit;
  b_widen_column : string -> string -> unit;
  b_set_ttl : string -> int64 option -> unit;
}

val local_backend : Db.t -> backend

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int  (** rows inserted or deleted *)
  | Done of string  (** DDL acknowledgement *)

(** Parse and execute one statement.
    @raise Lexer.Syntax_error on parse errors,
    {!Planner.Plan_error} on semantic errors, and {!Exec_error} on
    runtime errors (unknown table, duplicate key, arity mismatches). *)
val execute : backend -> string -> result

val execute_stmt : backend -> Ast.stmt -> result

(** Render a result as an aligned text table (the SQL shell's output). *)
val pp_result : Format.formatter -> result -> unit
